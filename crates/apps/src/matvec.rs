//! Distributed matrix–vector multiplication (paper Section 5.5).
//!
//! `y = A·x` with `A` (rows × cols, f64) in 1-D row layout: each rank holds
//! `rows / R` rows and a `cols / R` segment of `x`. One iteration is an
//! Allgather of the `x` segments (all-to-all broadcast) followed by the
//! local GEMV — so the kernel's throughput is directly gated by Allgather
//! latency, which is what Figure 16 measures (GFLOP/s, higher is better).
//!
//! Timing comes from the simulator; numerical correctness of the
//! distributed algorithm is established separately by [`verify_matvec`],
//! which runs the Allgather on real data with `mha-exec` and checks the
//! distributed result against a serial GEMV.

use mha_collectives::Built;
use mha_sched::ProcGrid;
use mha_simnet::ClusterSpec;

use crate::osu::{AppError, Contestant};

/// Problem description for one matvec benchmark point.
#[derive(Debug, Clone, Copy)]
pub struct MatvecConfig {
    /// Rows of `A` (= length of `y`).
    pub rows: usize,
    /// Columns of `A` (= length of `x`).
    pub cols: usize,
    /// Process layout.
    pub grid: ProcGrid,
}

impl MatvecConfig {
    /// The paper's strong-scaling problem: `1024 × 32768`.
    pub fn strong_scaling(grid: ProcGrid) -> Self {
        MatvecConfig {
            rows: 1024,
            cols: 32768,
            grid,
        }
    }

    /// The paper's weak-scaling problem: columns grow with the rank count
    /// (`1024 × 32768` at 256 ranks, doubling per doubling of ranks).
    pub fn weak_scaling(grid: ProcGrid) -> Self {
        let cols = 32768 * (grid.nranks() as usize).div_ceil(256).max(1);
        MatvecConfig {
            rows: 1024,
            cols,
            grid,
        }
    }

    /// Per-rank Allgather contribution in bytes (f64 segment of `x`),
    /// padded so every rank contributes equally.
    pub fn seg_bytes(&self) -> usize {
        let r = self.grid.nranks() as usize;
        self.cols.div_ceil(r) * 8
    }

    /// Total useful floating-point work per iteration (2 flops per matrix
    /// element).
    pub fn total_flops(&self) -> u64 {
        2 * self.rows as u64 * self.cols as u64
    }
}

/// Result of one simulated matvec iteration.
#[derive(Debug, Clone, Copy)]
pub struct MatvecResult {
    /// Sustained GFLOP/s across all ranks (the Figure 16 metric).
    pub gflops: f64,
    /// Allgather time (µs).
    pub comm_us: f64,
    /// Local GEMV time (µs).
    pub compute_us: f64,
}

/// Simulates one matvec iteration under `contestant`'s Allgather.
///
/// The local GEMV is uniform across ranks and strictly follows the
/// Allgather, so the iteration time is the Allgather makespan plus the
/// per-rank GEMV at the cluster's streaming FLOP rate.
pub fn run_matvec(
    cfg: MatvecConfig,
    contestant: Contestant,
    spec: &ClusterSpec,
) -> Result<MatvecResult, AppError> {
    let comm_us = contestant.allgather_latency_us(cfg.grid, cfg.seg_bytes(), spec)?;
    let per_rank_flops = cfg.total_flops() as f64 / f64::from(cfg.grid.nranks());
    let compute_us = per_rank_flops / spec.flops_rate * 1e6;
    let total_s = (comm_us + compute_us) * 1e-6;
    Ok(MatvecResult {
        gflops: cfg.total_flops() as f64 / total_s / 1e9,
        comm_us,
        compute_us,
    })
}

/// Numerically verifies the distributed algorithm: runs the Allgather of
/// `x` segments on real bytes (threaded executor), performs each rank's
/// GEMV on the gathered vector, and compares the assembled `y` against a
/// serial reference. Returns the max absolute error.
pub fn verify_matvec(cfg: MatvecConfig, built: &Built) -> Result<f64, String> {
    use mha_exec::{run_threaded, BufferStore};
    let r = cfg.grid.nranks() as usize;
    let seg = cfg.seg_bytes() / 8; // elements per padded segment
    let cols_padded = seg * r;

    // x: deterministic values; padding elements are zero.
    let x: Vec<f64> = (0..cols_padded)
        .map(|i| {
            if i < cfg.cols {
                ((i % 17) as f64) - 8.0
            } else {
                0.0
            }
        })
        .collect();
    // A[i][j] = small deterministic values.
    let a = |i: usize, j: usize| (((i * 31 + j * 7) % 13) as f64) - 6.0;

    let store = BufferStore::new(&built.sched);
    for (rank, &buf) in built.send.iter().enumerate() {
        let seg_vals = &x[rank * seg..(rank + 1) * seg];
        let bytes: Vec<u8> = seg_vals.iter().flat_map(|v| v.to_ne_bytes()).collect();
        store.fill(buf, 0, &bytes);
    }
    run_threaded(&built.sched, &store, 4).map_err(|e| e.to_string())?;

    // Each rank computes its row block from its own gathered copy of x.
    let rows_per = cfg.rows.div_ceil(r);
    let mut y = vec![0.0f64; rows_per * r];
    for (rank, &buf) in built.recv.iter().enumerate() {
        let gathered = store.read(buf, 0, cols_padded * 8);
        let gx: Vec<f64> = gathered
            .chunks_exact(8)
            .map(|c| f64::from_ne_bytes(c.try_into().unwrap()))
            .collect();
        for local_row in 0..rows_per {
            let i = rank * rows_per + local_row;
            if i >= cfg.rows {
                break;
            }
            let mut acc = 0.0;
            for (j, xv) in gx.iter().enumerate().take(cfg.cols) {
                acc += a(i, j) * xv;
            }
            y[i] = acc;
        }
    }

    // Serial reference.
    let mut max_err = 0.0f64;
    for (i, yv) in y.iter().enumerate().take(cfg.rows) {
        let mut acc = 0.0;
        for (j, xv) in x.iter().enumerate().take(cfg.cols) {
            acc += a(i, j) * xv;
        }
        max_err = max_err.max((acc - yv).abs());
    }
    Ok(max_err)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mha_collectives::Library;

    #[test]
    fn strong_scaling_config_matches_paper() {
        let cfg = MatvecConfig::strong_scaling(ProcGrid::new(8, 32));
        assert_eq!((cfg.rows, cfg.cols), (1024, 32768));
        assert_eq!(cfg.seg_bytes(), 32768 / 256 * 8);
    }

    #[test]
    fn weak_scaling_doubles_columns_with_ranks() {
        let c256 = MatvecConfig::weak_scaling(ProcGrid::new(8, 32));
        let c512 = MatvecConfig::weak_scaling(ProcGrid::new(16, 32));
        let c1024 = MatvecConfig::weak_scaling(ProcGrid::new(32, 32));
        assert_eq!(c256.cols, 32768);
        assert_eq!(c512.cols, 65536);
        assert_eq!(c1024.cols, 131072);
    }

    #[test]
    fn mha_yields_higher_gflops_than_libraries() {
        // Figure 16's qualitative claim, at a reduced scale.
        let spec = ClusterSpec::thor();
        let cfg = MatvecConfig::strong_scaling(ProcGrid::new(8, 32));
        let mha = run_matvec(cfg, Contestant::MhaTuned, &spec).unwrap();
        let hpcx = run_matvec(cfg, Contestant::Library(Library::HpcX), &spec).unwrap();
        let mva = run_matvec(cfg, Contestant::Library(Library::Mvapich2X), &spec).unwrap();
        assert!(mha.gflops > hpcx.gflops);
        assert!(mha.gflops > mva.gflops);
        // At the paper's 256-rank scale, communication dominates the
        // baselines by construction (Section 5.5).
        assert!(hpcx.comm_us > hpcx.compute_us);
    }

    #[test]
    fn distributed_matvec_is_numerically_correct() {
        let spec = ClusterSpec::thor();
        let cfg = MatvecConfig {
            rows: 64,
            cols: 96,
            grid: ProcGrid::new(2, 3),
        };
        let built = mha_collectives::AllgatherAlgo::MhaInter(Default::default())
            .build(cfg.grid, cfg.seg_bytes(), &spec)
            .unwrap();
        let err = verify_matvec(cfg, &built).unwrap();
        assert!(err < 1e-9, "max error {err}");
    }

    #[test]
    fn distributed_matvec_correct_with_flat_ring_too() {
        let spec = ClusterSpec::thor();
        let cfg = MatvecConfig {
            rows: 32,
            cols: 40,
            grid: ProcGrid::new(2, 2),
        };
        let built = mha_collectives::AllgatherAlgo::Ring
            .build(cfg.grid, cfg.seg_bytes(), &spec)
            .unwrap();
        let err = verify_matvec(cfg, &built).unwrap();
        assert!(err < 1e-9, "max error {err}");
    }
}
