//! Records the incremental-allocator speedup as `results/BENCH_waterfill2.json`.
//!
//! Two measurements, both on flat `Ring` allgathers at 64 KiB per rank:
//!
//! 1. **flat_ring 8x16 speedup** — wall time per simulated run with the
//!    incremental allocator (memoized component replay + keyed stale-event
//!    cancellation) vs scratch mode (`MHA_SCRATCH_FILL` semantics: every
//!    component re-solved, stale events popped and version-checked — the
//!    faithful pre-overhaul engine). The two modes are bit-identical in
//!    output; only speed differs.
//! 2. **per-event cost scaling** — ns per processed event at 128→1024
//!    nodes (ppn 1). The old engine's stale-event storm plus
//!    recompute-from-scratch made this grow with topology size; the
//!    overhaul targets flat (sub-linear) per-event cost.
//!
//! Flags: `--assert-ratio <x>` fails (exit 1) if the 8x16 speedup is below
//! `x` (CI smoke uses 2, locally 5 is expected); `--quick` shortens the
//! timing windows for CI runners. Honors `MHA_RESULTS_DIR`.

use mha_bench::results_dir;
use mha_collectives::AllgatherAlgo;
use mha_sched::{FrozenSchedule, Probe, ProcGrid};
use mha_simnet::{set_incremental_enabled, ClusterSpec, EngineArena, Simulator};
use std::fmt::Write as _;
use std::time::Instant;

/// Reference from the PR 1 trajectory (CHANGES.md): `simulate flat_ring
/// 8x16` went 44.5 → 37.9 ms/run on that machine. Recorded for the
/// trajectory plot; absolute times are hardware-dependent, so the asserted
/// criterion is the in-process incremental-vs-scratch ratio.
const PR1_FLAT_RING_8X16_MS: f64 = 37.9;

#[derive(Default)]
struct WfStats {
    recomputes: u64,
    touched: u64,
    comp_flows: u64,
}

impl Probe for WfStats {
    fn waterfill(&mut self, _t: f64, flows: usize, touched: usize) {
        self.recomputes += 1;
        self.touched += touched as u64;
        self.comp_flows += flows as u64;
    }
}

/// Mean wall seconds per run over a fixed timing window, through a warm
/// arena (the campaign runner's hot path).
fn time_runs(sim: &Simulator, sch: &FrozenSchedule, window: f64) -> f64 {
    let mut arena = EngineArena::new();
    sim.run_in(sch, &mut arena).unwrap(); // warm-up: allocations + memo
    let t0 = Instant::now();
    let mut n = 0u32;
    loop {
        std::hint::black_box(sim.run_in(sch, &mut arena).unwrap().makespan);
        n += 1;
        if t0.elapsed().as_secs_f64() >= window {
            break;
        }
    }
    t0.elapsed().as_secs_f64() / f64::from(n)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut assert_ratio: Option<f64> = None;
    let mut window = 1.0f64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--assert-ratio" => {
                i += 1;
                assert_ratio = Some(args[i].parse().expect("--assert-ratio <float>"));
            }
            "--quick" => window = 0.25,
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let spec = ClusterSpec::thor();
    let sim = Simulator::new(spec.clone()).unwrap();
    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"pr1_flat_ring_8x16_ms\": {PR1_FLAT_RING_8X16_MS},"
    );

    // -- flat_ring 8x16: incremental vs scratch ---------------------------
    let grid = ProcGrid::new(8, 16);
    let built = AllgatherAlgo::Ring.build(grid, 64 * 1024, &spec).unwrap();
    let sch: &FrozenSchedule = &built.sched;

    set_incremental_enabled(Some(true));
    let mut st = WfStats::default();
    let r = sim.run_probed(sch, &mut st).unwrap();
    let inc = time_runs(&sim, sch, window);
    set_incremental_enabled(Some(false));
    let scratch = time_runs(&sim, sch, window);
    set_incremental_enabled(None);

    let speedup = scratch / inc;
    println!(
        "flat_ring 8x16: incremental {:.2} ms/run, scratch {:.2} ms/run, speedup {speedup:.2}x",
        inc * 1e3,
        scratch * 1e3
    );
    println!(
        "  events={}, recomputes={}, avg_comp={:.1} flows, levels touched/recompute={:.2}",
        r.events,
        st.recomputes,
        st.comp_flows as f64 / st.recomputes as f64,
        st.touched as f64 / st.recomputes as f64
    );
    let _ = writeln!(json, "  \"flat_ring_8x16\": {{");
    let _ = writeln!(json, "    \"incremental_ms_per_run\": {:.4},", inc * 1e3);
    let _ = writeln!(json, "    \"scratch_ms_per_run\": {:.4},", scratch * 1e3);
    let _ = writeln!(json, "    \"speedup_vs_scratch\": {speedup:.3},");
    let _ = writeln!(json, "    \"events\": {},", r.events);
    let _ = writeln!(json, "    \"waterfill_recomputes\": {},", st.recomputes);
    let _ = writeln!(
        json,
        "    \"levels_touched_per_recompute\": {:.3}",
        st.touched as f64 / st.recomputes as f64
    );
    let _ = writeln!(json, "  }},");

    // -- per-event cost scaling, 128 → 1024 nodes -------------------------
    set_incremental_enabled(Some(true));
    let mut per_event_ns = Vec::new();
    let _ = writeln!(json, "  \"per_event_scaling\": [");
    let node_counts = [128u32, 256, 512, 1024];
    for (k, &nodes) in node_counts.iter().enumerate() {
        let grid = ProcGrid::new(nodes, 1);
        let built = AllgatherAlgo::Ring.build(grid, 64 * 1024, &spec).unwrap();
        let sch: &FrozenSchedule = &built.sched;
        let events = sim.run(sch).unwrap().events;
        let per_run = time_runs(&sim, sch, window.min(0.5) * 2.0);
        let ns = per_run / events as f64 * 1e9;
        per_event_ns.push(ns);
        println!(
            "ring {nodes}x1: {:.2} ms/run, {events} events, {ns:.0} ns/event",
            per_run * 1e3
        );
        let _ = writeln!(
            json,
            "    {{\"nodes\": {nodes}, \"ms_per_run\": {:.4}, \"events\": {events}, \"ns_per_event\": {ns:.1}}}{}",
            per_run * 1e3,
            if k + 1 < node_counts.len() { "," } else { "" }
        );
    }
    set_incremental_enabled(None);
    let _ = writeln!(json, "  ],");
    let scaling = per_event_ns[per_event_ns.len() - 1] / per_event_ns[0];
    println!("per-event cost 1024/128 nodes: {scaling:.2}x (sub-linear target < 8x)");
    let _ = writeln!(json, "  \"per_event_cost_ratio_1024_vs_128\": {scaling:.3}");
    json.push_str("}\n");

    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join("BENCH_waterfill2.json");
    std::fs::write(&path, &json).expect("write BENCH_waterfill2.json");
    println!("[saved {}]", path.display());

    // Sub-linear per-event scaling: an 8× topology must not cost 8× per
    // event. Always enforced — this is the structural claim, not a noisy
    // absolute timing.
    assert!(
        scaling < 8.0,
        "per-event cost scaled super-linearly: {scaling:.2}x over an 8x topology growth"
    );
    if let Some(min) = assert_ratio {
        if speedup < min {
            eprintln!("FAIL: flat_ring 8x16 speedup {speedup:.2}x < required {min}x");
            std::process::exit(1);
        }
        println!("speedup {speedup:.2}x >= required {min}x");
    }
}
