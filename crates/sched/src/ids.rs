//! Strongly-typed identifiers used throughout the schedule IR.
//!
//! All identifiers are dense `u32` indices, assigned in creation order by the
//! [`crate::builder::ScheduleBuilder`]. Keeping them dense lets the executors
//! and the simulator index straight into `Vec`s without hashing.

use std::fmt;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the identifier as a plain index.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(v: u32) -> Self {
                $name(v)
            }
        }

        impl From<usize> for $name {
            fn from(v: usize) -> Self {
                $name(u32::try_from(v).expect("id overflows u32"))
            }
        }
    };
}

id_type!(
    /// An MPI-style process rank (global, 0-based).
    RankId,
    "r"
);
id_type!(
    /// A compute node within the cluster.
    NodeId,
    "n"
);
id_type!(
    /// A declared buffer (private to a rank or shared within a node).
    BufId,
    "b"
);
id_type!(
    /// An operation in a schedule's dependency DAG.
    OpId,
    "op"
);
id_type!(
    /// A group at some depth of a [`crate::Topology`] tree (a node, a
    /// socket, … — depth decides the granularity).
    GroupId,
    "g"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_prefixes() {
        assert_eq!(RankId(3).to_string(), "r3");
        assert_eq!(NodeId(0).to_string(), "n0");
        assert_eq!(BufId(12).to_string(), "b12");
        assert_eq!(OpId(7).to_string(), "op7");
        assert_eq!(GroupId(2).to_string(), "g2");
    }

    #[test]
    fn conversions_round_trip() {
        let r: RankId = 5u32.into();
        assert_eq!(r.index(), 5);
        let o: OpId = 9usize.into();
        assert_eq!(o, OpId(9));
    }

    #[test]
    fn ordering_follows_indices() {
        assert!(OpId(1) < OpId(2));
        assert!(RankId(0) < RankId(10));
    }

    #[test]
    #[should_panic(expected = "id overflows u32")]
    fn oversized_index_panics() {
        let _: OpId = (u32::MAX as usize + 1).into();
    }
}
