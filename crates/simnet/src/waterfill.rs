//! Max-min fair bandwidth allocation ("water-filling") with weighted
//! resource demands.
//!
//! Given a set of fluid flows, each with an intrinsic rate cap (e.g. one
//! rail's peak for a rail transfer) and a set of `(resource, weight)` pairs
//! it loads — a flow at rate `x` consumes `weight · x` of each resource —
//! the allocator assigns max-min fair rates by classical progressive
//! filling: all rates rise together until a resource saturates, flows
//! through it freeze, filling continues. Per-flow caps are modeled as
//! virtual single-flow resources.
//!
//! Weights express that some byte streams load memory harder than others:
//! a kernel-assisted CMA copy touches DRAM about twice as hard per payload
//! byte as a streaming shm memcpy (see [`crate::ClusterSpec::cma_mem_weight`]).
//!
//! Two allocators live here:
//!
//! * [`WaterFiller`] — the from-scratch progressive-filling reference.
//!   Its output (rates *and* per-resource saturation levels) is a pure
//!   function of the component it is handed: the flow caps, the weights,
//!   the resources in first-appearance order, and their capacities. That
//!   purity is what makes the second allocator possible.
//! * [`IncrementalFiller`] — the engine's allocator. It canonicalizes the
//!   component into a bit-exact descriptor and replays memoized solutions:
//!   schedules are overwhelmingly self-similar (a ring step re-creates the
//!   same contention pattern thousands of times), so steady state is a
//!   hash probe plus a copy instead of a fill. On a miss it defers to the
//!   reference filler and memoizes. It also tracks persistent per-resource
//!   saturation levels across events, so every recompute reports how many
//!   resources' bottleneck level actually moved ("touched") — the
//!   observable that distinguishes an incremental update from a full
//!   recompute.

use std::collections::HashMap;
use std::hash::BuildHasherDefault;

use crate::resources::ResourceId;

/// One flow's allocation inputs.
#[derive(Debug, Clone, Copy)]
pub struct FlowSpec<'a> {
    /// Intrinsic rate cap (bytes/s); must be positive and finite.
    pub cap: f64,
    /// `(resource, weight)` pairs the flow loads. May be empty (rate = cap).
    pub resources: &'a [(ResourceId, f64)],
}

/// Relative tolerance for saturation detection.
const EPS: f64 = 1e-9;

/// A flow spec that cannot be water-filled. Raised as a typed error on the
/// engine's flow-issue path (instead of the old debug-only assertions that
/// let a non-finite cap silently corrupt every rate in release builds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FillError {
    /// A flow's rate cap was zero, negative, or not finite.
    BadCap {
        /// Index of the offending flow within the filled component.
        flow: usize,
        /// The rejected cap value.
        cap: f64,
    },
    /// A flow's resource weight was zero, negative, or not finite.
    BadWeight {
        /// Index of the offending flow within the filled component.
        flow: usize,
        /// The rejected weight value.
        weight: f64,
    },
}

impl FillError {
    /// Index (within the filled component) of the flow that was rejected.
    pub fn flow(&self) -> usize {
        match *self {
            FillError::BadCap { flow, .. } | FillError::BadWeight { flow, .. } => flow,
        }
    }
}

impl std::fmt::Display for FillError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            FillError::BadCap { flow, cap } => {
                write!(f, "flow {flow}: cap must be positive and finite, got {cap}")
            }
            FillError::BadWeight { flow, weight } => {
                write!(
                    f,
                    "flow {flow}: weight must be positive and finite, got {weight}"
                )
            }
        }
    }
}

impl std::error::Error for FillError {}

/// Reusable scratch space for [`WaterFiller::fill`]; hoisted out so the
/// simulation engine does not allocate on every event.
#[derive(Debug, Default)]
pub struct WaterFiller {
    // Dense local re-indexing of the (sparse, global) ResourceIds.
    // `local_of` is indexed by `ResourceId` directly (u32::MAX = absent);
    // only the entries named by `local_ids` are live, so resetting between
    // calls costs O(component), not O(cluster resources).
    local_ids: Vec<ResourceId>,
    local_of: Vec<u32>,
    rem: Vec<f64>,
    wsum: Vec<f64>,
    flows_of: Vec<Vec<u32>>,
    fixed: Vec<bool>,
    levels: Vec<f64>,
}

impl WaterFiller {
    /// Creates an empty allocator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Computes max-min fair rates for `flows`, writing into `rates`
    /// (which is resized to `flows.len()`).
    ///
    /// `capacity(r)` must return the total capacity of resource `r`.
    pub fn fill(
        &mut self,
        flows: &[FlowSpec<'_>],
        capacity: impl FnMut(ResourceId) -> f64,
        rates: &mut Vec<f64>,
    ) -> Result<(), FillError> {
        self.fill_with(flows.len(), |fi| flows[fi], capacity, rates)
    }

    /// The component's real resources, in first-appearance order, after a
    /// fill. Aligned with [`WaterFiller::levels`].
    pub fn local_resources(&self) -> &[ResourceId] {
        &self.local_ids
    }

    /// The saturation level of each component resource after a fill
    /// (aligned with [`WaterFiller::local_resources`]): the common rate at
    /// which the resource ran out of headroom and froze its flows, or
    /// `f64::INFINITY` for a resource that never saturated.
    pub fn levels(&self) -> &[f64] {
        &self.levels[..self.local_ids.len()]
    }

    /// [`WaterFiller::fill`] over a *view*: `flow(i)` yields the `i`-th
    /// flow's spec on demand (it may be called several times per flow and
    /// must be pure). This lets the engine water-fill straight out of its
    /// flow table without assembling a spec vector, so steady-state calls
    /// allocate nothing: every scratch structure here — including the
    /// per-resource member lists — keeps its buffers across calls.
    pub fn fill_with<'a>(
        &mut self,
        n: usize,
        mut flow: impl FnMut(usize) -> FlowSpec<'a>,
        mut capacity: impl FnMut(ResourceId) -> f64,
        rates: &mut Vec<f64>,
    ) -> Result<(), FillError> {
        rates.clear();
        rates.resize(n, 0.0);
        if n == 0 {
            self.local_ids.clear();
            self.levels.clear();
            return Ok(());
        }

        // Un-map the previous component's resources (cheap: O(previous
        // component size)), then rebuild for this call. `flows_of` entries
        // are recycled slot-wise below instead of dropped.
        for &r in &self.local_ids {
            self.local_of[r.index()] = u32::MAX;
        }
        self.local_ids.clear();
        self.rem.clear();
        self.wsum.clear();
        self.fixed.clear();
        self.fixed.resize(n, false);

        // Build the local resource table: real resources first…
        for fi in 0..n {
            let f = flow(fi);
            if !(f.cap.is_finite() && f.cap > 0.0) {
                return Err(FillError::BadCap {
                    flow: fi,
                    cap: f.cap,
                });
            }
            for &(r, w) in f.resources {
                if !(w.is_finite() && w > 0.0) {
                    return Err(FillError::BadWeight {
                        flow: fi,
                        weight: w,
                    });
                }
                if r.index() >= self.local_of.len() {
                    self.local_of.resize(r.index() + 1, u32::MAX);
                }
                let li = match self.local_of[r.index()] {
                    u32::MAX => {
                        let li = self.local_ids.len();
                        self.local_of[r.index()] = li as u32;
                        self.local_ids.push(r);
                        self.rem.push(capacity(r));
                        self.wsum.push(0.0);
                        if self.flows_of.len() <= li {
                            self.flows_of.push(Vec::new());
                        } else {
                            self.flows_of[li].clear();
                        }
                        li
                    }
                    li => li as usize,
                };
                self.wsum[li] += w;
                self.flows_of[li].push(fi as u32);
            }
        }
        // …then one virtual resource per flow for its rate cap.
        let virt_base = self.local_ids.len();
        for fi in 0..n {
            self.rem.push(flow(fi).cap);
            self.wsum.push(1.0);
            let li = virt_base + fi;
            if self.flows_of.len() <= li {
                self.flows_of.push(Vec::new());
            } else {
                self.flows_of[li].clear();
            }
            self.flows_of[li].push(fi as u32);
        }

        let nres = self.rem.len();
        self.levels.clear();
        self.levels.resize(nres, f64::INFINITY);
        let mut unfixed = n;
        let mut level = 0.0f64;

        while unfixed > 0 {
            // The smallest additional level any active resource can absorb.
            let mut delta = f64::INFINITY;
            let mut argmin = usize::MAX;
            for li in 0..nres {
                if self.wsum[li] > 0.0 {
                    let share = self.rem[li].max(0.0) / self.wsum[li];
                    if share < delta {
                        delta = share;
                        argmin = li;
                    }
                }
            }
            if !delta.is_finite() {
                // Defensively unreachable: every unfixed flow keeps its
                // virtual cap resource active, so the scan above always
                // sees one. Freeze the remainder rather than spin.
                debug_assert!(false, "no active resource while {unfixed} flows unfixed");
                for (fi, rate) in rates.iter_mut().enumerate().take(n) {
                    if !self.fixed[fi] {
                        self.fixed[fi] = true;
                        *rate = level;
                    }
                }
                break;
            }
            if delta > 0.0 {
                level += delta;
                // Drain headroom. A `delta == 0` round — some resource's
                // headroom is already gone, e.g. a rail whose fault
                // scaling hit exactly 0 at issue time — skips this
                // (bitwise no-op) drain and goes straight to the freeze
                // pass, which starves the exhausted resource's flows and
                // retires it in one pass.
                for li in 0..nres {
                    if self.wsum[li] > 0.0 {
                        self.rem[li] -= delta * self.wsum[li];
                    }
                }
            }
            // Freeze flows on saturated resources and retire those
            // resources from the min scan.
            let mut progress = false;
            for li in 0..nres {
                if self.wsum[li] <= 0.0 || self.rem[li] > EPS * level.max(1e-30) {
                    continue;
                }
                progress = true;
                unfixed -= self.freeze_resource(li, level, virt_base, &mut flow, rates);
            }
            if !progress {
                // Forward-progress guarantee for release builds: the
                // argmin resource is drained to within rounding of zero,
                // so if the tolerance test somehow missed it (enormous
                // weight sums), retire it outright. Each round now fixes
                // a flow or retires a resource, bounding the loop.
                debug_assert!(false, "water-filling round made no progress");
                unfixed -= self.freeze_resource(argmin, level, virt_base, &mut flow, rates);
            }
        }
        Ok(())
    }

    /// Freezes every unfixed flow crossing local resource `li` at `level`,
    /// retires their weights elsewhere, and retires `li` itself. Returns
    /// how many flows were fixed.
    fn freeze_resource<'a>(
        &mut self,
        li: usize,
        level: f64,
        virt_base: usize,
        flow: &mut impl FnMut(usize) -> FlowSpec<'a>,
        rates: &mut [f64],
    ) -> usize {
        let flow_list = std::mem::take(&mut self.flows_of[li]);
        let mut fixed_now = 0;
        for &fi in &flow_list {
            let fi = fi as usize;
            if self.fixed[fi] {
                continue;
            }
            self.fixed[fi] = true;
            rates[fi] = level;
            fixed_now += 1;
            // Retire the flow from all its other resources.
            for &(r, w) in flow(fi).resources {
                let other = self.local_of[r.index()] as usize;
                self.wsum[other] -= w;
            }
            self.wsum[virt_base + fi] = 0.0;
        }
        self.flows_of[li] = flow_list;
        self.wsum[li] = 0.0;
        self.levels[li] = level;
        fixed_now
    }
}

/// One-shot convenience wrapper around [`WaterFiller::fill`].
///
/// # Panics
/// On an invalid flow spec (non-finite/non-positive cap or weight); use
/// [`WaterFiller::fill`] for the typed error.
pub fn max_min_rates(flows: &[FlowSpec<'_>], capacity: impl FnMut(ResourceId) -> f64) -> Vec<f64> {
    let mut filler = WaterFiller::new();
    let mut rates = Vec::new();
    filler
        .fill(flows, capacity, &mut rates)
        .expect("invalid flow spec");
    rates
}

// ---------------------------------------------------------------------------
// Incremental allocator: canonical descriptors + memoized replay
// ---------------------------------------------------------------------------

/// FNV-1a over the descriptor words — cheap and deterministic (the memo
/// must behave identically across processes; the default SipHash keys
/// would not change results, but FNV keeps the probe cost trivial).
#[derive(Debug)]
struct Fnv(u64);

impl Default for Fnv {
    fn default() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
}

impl std::hash::Hasher for Fnv {
    fn finish(&self) -> u64 {
        self.0
    }
    // The descriptor keys are `[u64]` slices, which std's `Hash`
    // specialization feeds to `write` as one raw byte slice. A byte-wise
    // FNV loop would serialize 8 multiplies per word; even word-wise, one
    // 70-word key is a ~70-multiply dependency chain. Four independent
    // lanes over strided words keep the multipliers pipelined, cutting the
    // probe's critical path ~4x; lanes fold together at the end.
    fn write(&mut self, bytes: &[u8]) {
        const M: u64 = 0x0000_0100_0000_01b3;
        let mut lanes = [
            self.0,
            0x9e37_79b9_7f4a_7c15,
            0xc2b2_ae3d_27d4_eb4f,
            0x1656_67b1_9e37_79f9,
        ];
        let mut chunks = bytes.chunks_exact(32);
        for c in &mut chunks {
            for (l, w) in lanes.iter_mut().zip(c.chunks_exact(8)) {
                *l = (*l ^ u64::from_le_bytes(w.try_into().unwrap())).wrapping_mul(M);
            }
        }
        let rest = chunks.remainder();
        let mut words = rest.chunks_exact(8);
        for (i, w) in (&mut words).enumerate() {
            lanes[i] = (lanes[i] ^ u64::from_le_bytes(w.try_into().unwrap())).wrapping_mul(M);
        }
        let mut h = lanes[0];
        for &l in &lanes[1..] {
            h = (h ^ l).wrapping_mul(M);
        }
        for &b in words.remainder() {
            h = (h ^ u64::from(b)).wrapping_mul(M);
        }
        self.0 = h;
    }
    fn write_u64(&mut self, i: u64) {
        self.0 = (self.0 ^ i).wrapping_mul(0x0000_0100_0000_01b3);
    }
    fn write_usize(&mut self, i: usize) {
        self.write_u64(i as u64);
    }
}

/// One memoized solution: rates per flow and saturation level per real
/// resource, both in component order, plus each level's caller-local
/// resource index (used by [`IncrementalFiller::fill_keyed`] to map the
/// levels back onto the *current* occurrence's global resources —
/// distinct components share cache entries whenever their shapes match).
#[derive(Debug)]
struct CacheEntry {
    rates: Box<[f64]>,
    levels: Box<[f64]>,
    lidx: Box<[u32]>,
}

/// Components bigger than this are solved directly (a memo entry would be
/// large and such components are rare transients).
const MEMO_MAX_FLOWS: usize = 128;
/// Deterministic bound on the memo; on overflow it is flushed whole, so
/// behavior never depends on insertion order.
const MEMO_CAP: usize = 1 << 15;

/// Memo-cache counters (diagnostics for benches and tests).
#[derive(Debug, Default, Clone, Copy)]
pub struct FillStats {
    /// Components answered by replaying a memoized solution.
    pub hits: u64,
    /// Components solved by the reference filler (then memoized).
    pub misses: u64,
    /// Times the memo hit [`MEMO_CAP`] and was flushed.
    pub flushes: u64,
}

/// The engine's incremental max-min allocator.
///
/// Wraps the reference [`WaterFiller`] with two structures that live
/// *across* events:
///
/// * a **memo cache** keyed by the component's canonical descriptor — for
///   each flow in component order its cap bits and `(first-appearance
///   resource index, weight bits)` pairs, then each distinct resource's
///   effective-capacity bits. The reference filler's output is a pure
///   function of exactly this data (it queries capacities once, at first
///   appearance, and orders its internal tables the same way), so
///   replaying a memoized solution is bit-identical to re-solving.
/// * a **persistent per-resource saturation level** array, compared
///   bit-wise after every fill to count how many resources' bottleneck
///   level actually moved — the `touched` count surfaced through
///   [`mha_sched::Probe::waterfill`].
///
/// Both caches are behavior-invisible by construction: disabling them
/// (`MHA_SCRATCH_FILL=1`, see [`crate::set_incremental_enabled`]) changes
/// only speed. The conformance waterfill oracle asserts exactly that.
#[derive(Debug, Default)]
pub struct IncrementalFiller {
    scratch: WaterFiller,
    /// Persistent saturation level per global resource (`INFINITY` =
    /// unsaturated), compared bit-wise to produce `touched` counts.
    levels: Vec<f64>,
    // Epoch-stamped global→component-local resource numbering, rebuilt
    // per fill in O(component).
    lstamp: Vec<u64>,
    lidx: Vec<u32>,
    lres: Vec<u32>,
    epoch: u64,
    key: Vec<u64>,
    cache: HashMap<Box<[u64]>, CacheEntry, BuildHasherDefault<Fnv>>,
    stats: FillStats,
}

impl IncrementalFiller {
    /// Creates an empty allocator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Memo-cache counters since construction.
    pub fn stats(&self) -> FillStats {
        self.stats
    }

    /// Rewinds the per-run state (persistent levels) for a cluster of
    /// `n_res` resources. The memo cache deliberately survives: its
    /// entries are pure functions of their descriptors, so a warm cache
    /// across runs (the campaign arena pattern) is bit-safe and fast.
    pub fn reset(&mut self, n_res: usize) {
        self.levels.clear();
        self.levels.resize(n_res, f64::INFINITY);
        if self.lstamp.len() < n_res {
            self.lstamp.resize(n_res, 0);
            self.lidx.resize(n_res, 0);
        }
    }

    /// Computes max-min rates for a component presented as a view (same
    /// contract as [`WaterFiller::fill_with`]). Returns the number of
    /// component resources whose persistent saturation level changed.
    ///
    /// With `use_memo` false this is exactly the reference filler (plus
    /// level tracking) — the differential-testing baseline.
    pub fn fill_view<'a>(
        &mut self,
        n: usize,
        mut flow: impl FnMut(usize) -> FlowSpec<'a>,
        mut capacity: impl FnMut(ResourceId) -> f64,
        rates: &mut Vec<f64>,
        use_memo: bool,
    ) -> Result<usize, FillError> {
        if n == 0 {
            rates.clear();
            return Ok(0);
        }
        if !use_memo || n > MEMO_MAX_FLOWS {
            self.scratch.fill_with(n, &mut flow, &mut capacity, rates)?;
            return Ok(self.absorb_scratch_levels());
        }

        // Canonical descriptor: flows in order (cap bits, degree, then
        // (local resource index, weight bits) pairs), then each distinct
        // resource's effective capacity bits in first-appearance order —
        // precisely the inputs the reference fill consumes.
        self.epoch += 1;
        self.key.clear();
        self.lres.clear();
        self.key.push(n as u64);
        for fi in 0..n {
            let f = flow(fi);
            self.key.push(f.cap.to_bits());
            self.key.push(f.resources.len() as u64);
            for &(r, w) in f.resources {
                let gi = r.index();
                if gi >= self.lstamp.len() {
                    self.lstamp.resize(gi + 1, 0);
                    self.lidx.resize(gi + 1, 0);
                }
                let li = if self.lstamp[gi] == self.epoch {
                    self.lidx[gi]
                } else {
                    self.lstamp[gi] = self.epoch;
                    let li = self.lres.len() as u32;
                    self.lidx[gi] = li;
                    self.lres.push(r.0);
                    li
                };
                self.key.push(u64::from(li));
                self.key.push(w.to_bits());
            }
        }
        for &g in &self.lres {
            self.key.push(capacity(ResourceId(g)).to_bits());
        }

        if let Some(entry) = self.cache.get(self.key.as_slice()) {
            // Replay. The stored key was compared word-for-word by the
            // map, so this cannot be a hash collision.
            self.stats.hits += 1;
            rates.clear();
            rates.extend_from_slice(&entry.rates);
            let mut touched = 0;
            for (k, &g) in self.lres.iter().enumerate() {
                let new = entry.levels[k];
                let slot = &mut self.levels[g as usize];
                if slot.to_bits() != new.to_bits() {
                    *slot = new;
                    touched += 1;
                }
            }
            return Ok(touched);
        }

        self.scratch.fill_with(n, &mut flow, &mut capacity, rates)?;
        self.stats.misses += 1;
        debug_assert_eq!(self.scratch.local_resources().len(), self.lres.len());
        if self.cache.len() >= MEMO_CAP {
            self.cache.clear();
            self.stats.flushes += 1;
        }
        self.cache.insert(
            self.key.clone().into_boxed_slice(),
            CacheEntry {
                rates: rates.as_slice().into(),
                levels: self.scratch.levels().into(),
                lidx: (0..self.lres.len() as u32).collect(),
            },
        );
        Ok(self.absorb_scratch_levels())
    }

    /// Memoized fill over a *caller-prebuilt* canonical descriptor — the
    /// engine's hot path. The simulation engine assembles `key` during its
    /// component DFS (it is touching every flow and resource anyway), so a
    /// memo hit costs one hash probe plus a replay, with no second
    /// traversal to canonicalize the component.
    ///
    /// `key` must uniquely encode `(n, per-flow cap bits / degree /
    /// (local-resource index, weight bits) pairs, per-local-resource
    /// effective capacity bits)` under a caller-chosen local numbering;
    /// `lidx_of(r)` maps a global resource to that numbering and
    /// `ids_of(li)` back to the *current* occurrence's global resource.
    /// Touched-level semantics are identical to
    /// [`IncrementalFiller::fill_view`].
    ///
    /// Keys from this entry point and from [`IncrementalFiller::fill_view`]
    /// use different local numberings, so a single instance must stick to
    /// one of the two memoized entry points.
    #[allow(clippy::too_many_arguments)] // mirrors the key layout, item by item
    pub fn fill_keyed<'a>(
        &mut self,
        key: &[u64],
        n: usize,
        mut flow: impl FnMut(usize) -> FlowSpec<'a>,
        mut capacity: impl FnMut(ResourceId) -> f64,
        mut lidx_of: impl FnMut(ResourceId) -> u32,
        mut ids_of: impl FnMut(u32) -> ResourceId,
        rates: &mut Vec<f64>,
    ) -> Result<usize, FillError> {
        if n == 0 {
            rates.clear();
            return Ok(0);
        }
        if n > MEMO_MAX_FLOWS {
            self.scratch.fill_with(n, &mut flow, &mut capacity, rates)?;
            return Ok(self.absorb_scratch_levels());
        }
        if let Some(entry) = self.cache.get(key) {
            self.stats.hits += 1;
            rates.clear();
            rates.extend_from_slice(&entry.rates);
            let mut touched = 0;
            for (k, &li) in entry.lidx.iter().enumerate() {
                let gi = ids_of(li).index();
                if gi >= self.levels.len() {
                    self.levels.resize(gi + 1, f64::INFINITY);
                }
                let new = entry.levels[k];
                let slot = &mut self.levels[gi];
                if slot.to_bits() != new.to_bits() {
                    *slot = new;
                    touched += 1;
                }
            }
            return Ok(touched);
        }
        self.scratch.fill_with(n, &mut flow, &mut capacity, rates)?;
        self.stats.misses += 1;
        if self.cache.len() >= MEMO_CAP {
            self.cache.clear();
            self.stats.flushes += 1;
        }
        let lidx: Box<[u32]> = self
            .scratch
            .local_resources()
            .iter()
            .map(|&r| lidx_of(r))
            .collect();
        self.cache.insert(
            key.to_vec().into_boxed_slice(),
            CacheEntry {
                rates: rates.as_slice().into(),
                levels: self.scratch.levels().into(),
                lidx,
            },
        );
        Ok(self.absorb_scratch_levels())
    }

    /// Folds the reference filler's per-component levels into the
    /// persistent array, returning how many entries changed bit-wise.
    fn absorb_scratch_levels(&mut self) -> usize {
        let mut touched = 0;
        for (r, &new) in self
            .scratch
            .local_resources()
            .iter()
            .zip(self.scratch.levels())
        {
            let gi = r.index();
            if gi >= self.levels.len() {
                self.levels.resize(gi + 1, f64::INFINITY);
            }
            if self.levels[gi].to_bits() != new.to_bits() {
                self.levels[gi] = new;
                touched += 1;
            }
        }
        touched
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const R0: ResourceId = ResourceId(0);
    const R1: ResourceId = ResourceId(1);
    const R2: ResourceId = ResourceId(2);

    fn cap_table(caps: &[f64]) -> impl FnMut(ResourceId) -> f64 + '_ {
        move |r| caps[r.index()]
    }

    fn unit(rs: &[ResourceId]) -> Vec<(ResourceId, f64)> {
        rs.iter().map(|&r| (r, 1.0)).collect()
    }

    #[test]
    fn single_flow_gets_min_of_cap_and_resource() {
        let rs = unit(&[R0]);
        let flows = [FlowSpec {
            cap: 5.0,
            resources: &rs,
        }];
        assert_eq!(max_min_rates(&flows, cap_table(&[10.0])), vec![5.0]);
        let flows = [FlowSpec {
            cap: 20.0,
            resources: &rs,
        }];
        assert_eq!(max_min_rates(&flows, cap_table(&[10.0])), vec![10.0]);
    }

    #[test]
    fn equal_flows_share_a_resource_equally() {
        let rs = unit(&[R0]);
        let flows = vec![
            FlowSpec {
                cap: 100.0,
                resources: &rs,
            };
            3
        ];
        let rates = max_min_rates(&flows, cap_table(&[9.0]));
        for r in rates {
            assert!((r - 3.0).abs() < 1e-9);
        }
    }

    #[test]
    fn capped_flow_releases_bandwidth_to_others() {
        let rs = unit(&[R0]);
        let flows = [
            FlowSpec {
                cap: 2.0,
                resources: &rs,
            },
            FlowSpec {
                cap: 100.0,
                resources: &rs,
            },
        ];
        let rates = max_min_rates(&flows, cap_table(&[10.0]));
        assert!((rates[0] - 2.0).abs() < 1e-9);
        assert!((rates[1] - 8.0).abs() < 1e-9);
    }

    #[test]
    fn classic_three_link_example() {
        // Textbook max-min: flows A:{R0,R1}, B:{R1}, C:{R0,R2};
        // caps R0=10, R1=4, R2=6 → A=B=2, C=6.
        let ra = unit(&[R0, R1]);
        let rb = unit(&[R1]);
        let rc = unit(&[R0, R2]);
        let flows = [
            FlowSpec {
                cap: 100.0,
                resources: &ra,
            },
            FlowSpec {
                cap: 100.0,
                resources: &rb,
            },
            FlowSpec {
                cap: 100.0,
                resources: &rc,
            },
        ];
        let rates = max_min_rates(&flows, cap_table(&[10.0, 4.0, 6.0]));
        assert!((rates[0] - 2.0).abs() < 1e-9, "{rates:?}");
        assert!((rates[1] - 2.0).abs() < 1e-9, "{rates:?}");
        assert!((rates[2] - 6.0).abs() < 1e-9, "{rates:?}");
    }

    #[test]
    fn weighted_flow_consumes_proportionally_more() {
        // A weight-2 flow and a weight-1 flow on a 9-unit resource: rates
        // equalize at 3 (2·3 + 1·3 = 9).
        let heavy = [(R0, 2.0)];
        let light = [(R0, 1.0)];
        let flows = [
            FlowSpec {
                cap: 100.0,
                resources: &heavy,
            },
            FlowSpec {
                cap: 100.0,
                resources: &light,
            },
        ];
        let rates = max_min_rates(&flows, cap_table(&[9.0]));
        assert!((rates[0] - 3.0).abs() < 1e-9, "{rates:?}");
        assert!((rates[1] - 3.0).abs() < 1e-9, "{rates:?}");
    }

    #[test]
    fn weighted_solo_flow_rate_is_capacity_over_weight() {
        let heavy = [(R0, 2.0)];
        let flows = [FlowSpec {
            cap: 100.0,
            resources: &heavy,
        }];
        let rates = max_min_rates(&flows, cap_table(&[10.0]));
        assert!((rates[0] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn flow_with_no_resources_runs_at_cap() {
        let flows = [FlowSpec {
            cap: 7.5,
            resources: &[],
        }];
        assert_eq!(max_min_rates(&flows, |_| unreachable!()), vec![7.5]);
    }

    #[test]
    fn zero_capacity_resource_starves_its_flows() {
        // A faulted (down) rail presents capacity 0: flows crossing it get
        // rate 0 cleanly, while flows elsewhere fill as usual.
        let dead = unit(&[R0]);
        let live = unit(&[R1]);
        let flows = [
            FlowSpec {
                cap: 100.0,
                resources: &dead,
            },
            FlowSpec {
                cap: 100.0,
                resources: &live,
            },
        ];
        let rates = max_min_rates(&flows, cap_table(&[0.0, 10.0]));
        assert_eq!(rates[0], 0.0);
        assert!((rates[1] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn all_flows_starved_terminates_in_one_round() {
        // Every resource at exactly 0 capacity: the freeze pass must fix
        // every flow at level 0 in a single pass — no spin, even though
        // delta is 0 in the only round.
        let rs0 = unit(&[R0]);
        let rs1 = unit(&[R0, R1]);
        let flows = [
            FlowSpec {
                cap: 10.0,
                resources: &rs0,
            },
            FlowSpec {
                cap: 10.0,
                resources: &rs1,
            },
        ];
        let rates = max_min_rates(&flows, cap_table(&[0.0, 0.0]));
        assert_eq!(rates, vec![0.0, 0.0]);
    }

    #[test]
    fn invalid_caps_and_weights_are_typed_errors_in_release_too() {
        // These were debug_assert!s: release builds silently produced
        // garbage rates. Now they are typed errors on every build.
        let rs = unit(&[R0]);
        let mut filler = WaterFiller::new();
        let mut rates = Vec::new();
        for bad in [f64::NAN, f64::INFINITY, 0.0, -1.0] {
            let flows = [FlowSpec {
                cap: bad,
                resources: &rs,
            }];
            let err = filler.fill(&flows, |_| 10.0, &mut rates).unwrap_err();
            assert_eq!(err.flow(), 0);
            assert!(matches!(err, FillError::BadCap { cap, .. } if cap.to_bits() == bad.to_bits()));
        }
        for bad in [f64::NAN, f64::NEG_INFINITY, 0.0, -2.0] {
            let weighted = [(R0, bad)];
            let flows = [
                FlowSpec {
                    cap: 1.0,
                    resources: &rs,
                },
                FlowSpec {
                    cap: 1.0,
                    resources: &weighted,
                },
            ];
            let err = filler.fill(&flows, |_| 10.0, &mut rates).unwrap_err();
            assert_eq!(err.flow(), 1);
            assert!(matches!(err, FillError::BadWeight { .. }));
        }
        // The filler remains usable after a rejection.
        let flows = [FlowSpec {
            cap: 4.0,
            resources: &rs,
        }];
        filler.fill(&flows, |_| 10.0, &mut rates).unwrap();
        assert_eq!(rates, vec![4.0]);
    }

    #[test]
    fn levels_report_saturation_points() {
        // Three flows on R0 (cap 9): R0 saturates at level 3. R1 carries
        // one of them too but never saturates.
        let r01 = unit(&[R0, R1]);
        let r0 = unit(&[R0]);
        let flows = [
            FlowSpec {
                cap: 100.0,
                resources: &r01,
            },
            FlowSpec {
                cap: 100.0,
                resources: &r0,
            },
            FlowSpec {
                cap: 100.0,
                resources: &r0,
            },
        ];
        let mut filler = WaterFiller::new();
        let mut rates = Vec::new();
        filler
            .fill(&flows, cap_table(&[9.0, 100.0]), &mut rates)
            .unwrap();
        assert_eq!(filler.local_resources(), &[R0, R1]);
        let lv = filler.levels();
        assert!((lv[0] - 3.0).abs() < 1e-9, "{lv:?}");
        assert_eq!(lv[1], f64::INFINITY, "{lv:?}");
    }

    fn check_feasible_and_maxmin(flows: &[FlowSpec<'_>], caps: &[f64], rates: &[f64]) {
        let mut used = vec![0.0; caps.len()];
        for (f, &r) in flows.iter().zip(rates) {
            assert!(r <= f.cap * (1.0 + 1e-6), "flow exceeds cap");
            for &(res, w) in f.resources {
                used[res.index()] += r * w;
            }
        }
        for (u, c) in used.iter().zip(caps) {
            assert!(*u <= c * (1.0 + 1e-6), "resource oversubscribed: {u} > {c}");
        }
        for (f, &r) in flows.iter().zip(rates) {
            let at_cap = (r - f.cap).abs() < 1e-6 * f.cap.max(1.0);
            let bottlenecked = f.resources.iter().any(|&(res, _)| {
                let c = caps[res.index()];
                (used[res.index()] - c).abs() < 1e-6 * c.max(1.0)
            });
            assert!(
                at_cap || bottlenecked,
                "flow with rate {r} is neither capped nor bottlenecked"
            );
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let rates = max_min_rates(&[], |_| 1.0);
        assert!(rates.is_empty());
    }

    #[test]
    fn randomized_allocations_are_feasible_and_bottlenecked() {
        // Deterministic pseudo-random exercise (xorshift).
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..200 {
            let nres = 1 + (next() % 6) as usize;
            let caps: Vec<f64> = (0..nres).map(|_| 1.0 + (next() % 100) as f64).collect();
            let nflows = 1 + (next() % 8) as usize;
            let resource_sets: Vec<Vec<(ResourceId, f64)>> = (0..nflows)
                .map(|_| {
                    let k = 1 + (next() % 3) as usize;
                    let mut v: Vec<ResourceId> = (0..k)
                        .map(|_| ResourceId((next() % nres as u64) as u32))
                        .collect();
                    v.sort();
                    v.dedup();
                    v.into_iter()
                        .map(|r| (r, 1.0 + (next() % 3) as f64))
                        .collect()
                })
                .collect();
            let flow_caps: Vec<f64> = (0..nflows).map(|_| 1.0 + (next() % 50) as f64).collect();
            let flows: Vec<FlowSpec> = resource_sets
                .iter()
                .zip(&flow_caps)
                .map(|(rs, &cap)| FlowSpec { cap, resources: rs })
                .collect();
            let rates = max_min_rates(&flows, |r| caps[r.index()]);
            check_feasible_and_maxmin(&flows, &caps, &rates);
        }
    }

    #[test]
    fn filler_is_reusable() {
        let mut filler = WaterFiller::new();
        let mut rates = Vec::new();
        let rs = unit(&[R0]);
        let flows = [FlowSpec {
            cap: 4.0,
            resources: &rs,
        }];
        filler.fill(&flows, |_| 10.0, &mut rates).unwrap();
        assert_eq!(rates, vec![4.0]);
        let flows2 = vec![
            FlowSpec {
                cap: 100.0,
                resources: &rs,
            };
            2
        ];
        filler.fill(&flows2, |_| 10.0, &mut rates).unwrap();
        assert!((rates[0] - 5.0).abs() < 1e-9);
        assert!((rates[1] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn incremental_replay_is_bit_identical_to_scratch() {
        // Same component filled twice through the memo (miss, then hit)
        // must match a fresh reference fill bit-for-bit, and the hit must
        // actually come from the cache.
        let ra = unit(&[R0, R1]);
        let rb = unit(&[R1]);
        let rc = unit(&[R0, R2]);
        let flows = [
            FlowSpec {
                cap: 100.0,
                resources: &ra,
            },
            FlowSpec {
                cap: 3.5,
                resources: &rb,
            },
            FlowSpec {
                cap: 100.0,
                resources: &rc,
            },
        ];
        let caps = [10.0, 4.0, 6.0];
        let mut inc = IncrementalFiller::new();
        inc.reset(3);
        let mut miss_rates = Vec::new();
        inc.fill_view(
            flows.len(),
            |i| flows[i],
            |r| caps[r.index()],
            &mut miss_rates,
            true,
        )
        .unwrap();
        assert_eq!(inc.stats().misses, 1);
        let mut hit_rates = Vec::new();
        inc.fill_view(
            flows.len(),
            |i| flows[i],
            |r| caps[r.index()],
            &mut hit_rates,
            true,
        )
        .unwrap();
        assert_eq!(inc.stats().hits, 1);
        let reference = max_min_rates(&flows, cap_table(&caps));
        for (got, want) in miss_rates.iter().zip(&reference) {
            assert_eq!(got.to_bits(), want.to_bits());
        }
        for (got, want) in hit_rates.iter().zip(&reference) {
            assert_eq!(got.to_bits(), want.to_bits());
        }
    }

    #[test]
    fn touched_counts_settle_to_zero_on_repeat_fills() {
        // First fill moves every saturating resource's level; an identical
        // repeat moves none.
        let rs = unit(&[R0]);
        let flows = [FlowSpec {
            cap: 100.0,
            resources: &rs,
        }; 2];
        let mut inc = IncrementalFiller::new();
        inc.reset(1);
        let mut rates = Vec::new();
        let t1 = inc
            .fill_view(2, |i| flows[i], |_| 10.0, &mut rates, true)
            .unwrap();
        assert_eq!(t1, 1, "R0 saturates, its level moves");
        let t2 = inc
            .fill_view(2, |i| flows[i], |_| 10.0, &mut rates, true)
            .unwrap();
        assert_eq!(t2, 0, "identical refill touches nothing");
        // A capacity change (fault rescale) moves it again — and misses
        // the memo, because capacity bits are part of the descriptor.
        let t3 = inc
            .fill_view(2, |i| flows[i], |_| 5.0, &mut rates, true)
            .unwrap();
        assert_eq!(t3, 1);
        assert_eq!(inc.stats().misses, 2);
    }

    #[test]
    fn memo_distinguishes_resource_identity_patterns() {
        // Two flows on one shared resource vs two flows on two distinct
        // resources: same caps and weights, different sharing structure —
        // the local-index canonicalization must keep them apart.
        let shared = [unit(&[R0]), unit(&[R0])];
        let distinct = [unit(&[R0]), unit(&[R1])];
        let mut inc = IncrementalFiller::new();
        inc.reset(2);
        let mut rates = Vec::new();
        inc.fill_view(
            2,
            |i| FlowSpec {
                cap: 100.0,
                resources: &shared[i],
            },
            |_| 10.0,
            &mut rates,
            true,
        )
        .unwrap();
        assert!((rates[0] - 5.0).abs() < 1e-9, "{rates:?}");
        inc.fill_view(
            2,
            |i| FlowSpec {
                cap: 100.0,
                resources: &distinct[i],
            },
            |_| 10.0,
            &mut rates,
            true,
        )
        .unwrap();
        assert!((rates[0] - 10.0).abs() < 1e-9, "{rates:?}");
        assert_eq!(inc.stats().hits, 0);
        assert_eq!(inc.stats().misses, 2);
    }
}
