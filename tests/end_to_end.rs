//! End-to-end pipeline tests: every Allgather algorithm is compiled,
//! structurally validated, proven race-free, executed on real bytes in
//! both executor modes, and priced on the simulator — the full round trip
//! a user of the library takes.

use mha::collectives::mha::{InterAlgo, MhaInterConfig, Offload};
use mha::collectives::{AllgatherAlgo, AllgatherPhase};
use mha::exec::{verify_allgather, verify_allreduce_sum_f32, Mode};
use mha::sched::ProcGrid;
use mha::simnet::{ClusterSpec, Simulator};

fn all_algorithms() -> Vec<AllgatherAlgo> {
    vec![
        AllgatherAlgo::Ring,
        AllgatherAlgo::RecursiveDoubling,
        AllgatherAlgo::Bruck,
        AllgatherAlgo::DirectSpread,
        AllgatherAlgo::SingleLeader,
        AllgatherAlgo::MultiLeader { groups: 2 },
        AllgatherAlgo::MhaInter(MhaInterConfig::default()),
        AllgatherAlgo::MhaInter(MhaInterConfig {
            inter: InterAlgo::RecursiveDoubling,
            offload: Offload::Auto,
            overlap: true,
        }),
        AllgatherAlgo::MhaInter(MhaInterConfig {
            inter: InterAlgo::Ring,
            offload: Offload::None,
            overlap: false,
        }),
    ]
}

#[test]
fn every_allgather_survives_the_full_pipeline() {
    let spec = ClusterSpec::thor();
    let sim = Simulator::new(spec.clone()).unwrap();
    let grid = ProcGrid::new(4, 4);
    let msg = 48;
    for algo in all_algorithms() {
        let built = algo
            .build(grid, msg, &spec)
            .unwrap_or_else(|e| panic!("{}: {e}", algo.name()));
        mha::sched::validate(&built.sched, Some(spec.rails))
            .unwrap_or_else(|e| panic!("{}: {e}", algo.name()));
        let races = mha::sched::check_races(&built.sched);
        assert!(races.is_empty(), "{}: races {races:?}", algo.name());
        verify_allgather(&built.sched, &built.send, &built.recv, msg, Mode::Single)
            .unwrap_or_else(|e| panic!("{}: {e}", algo.name()));
        verify_allgather(
            &built.sched,
            &built.send,
            &built.recv,
            msg,
            Mode::Threaded(6),
        )
        .unwrap_or_else(|e| panic!("{}: {e}", algo.name()));
        let res = sim.run(&built.sched).unwrap();
        assert!(res.makespan > 0.0, "{}", algo.name());
        // Every op completed in finite time and respects dependencies.
        for op in built.sched.ops() {
            for &d in &op.deps {
                assert!(res.op_end[d.index()] <= res.op_end[op.id.index()]);
            }
        }
    }
}

#[test]
fn allgather_volume_invariants_hold_for_flat_algorithms() {
    // Flat Allgathers are bandwidth-optimal: every rank receives exactly
    // (R-1) * msg bytes over the network/CMA.
    let spec = ClusterSpec::thor();
    let grid = ProcGrid::new(2, 4);
    let msg = 128;
    let r = grid.nranks() as u64;
    for algo in [
        AllgatherAlgo::Ring,
        AllgatherAlgo::RecursiveDoubling,
        AllgatherAlgo::Bruck,
        AllgatherAlgo::DirectSpread,
    ] {
        let built = algo.build(grid, msg, &spec).unwrap();
        let stats = built.sched.stats();
        assert_eq!(
            stats.cma_bytes + stats.rail_bytes,
            r * (r - 1) * msg as u64,
            "{}",
            algo.name()
        );
    }
}

#[test]
fn allreduce_survives_the_full_pipeline_on_awkward_grids() {
    let spec = ClusterSpec::thor();
    let sim = Simulator::new(spec.clone()).unwrap();
    for (nodes, ppn) in [(1u32, 5u32), (3, 2), (2, 6), (5, 1)] {
        let grid = ProcGrid::new(nodes, ppn);
        let elems = grid.nranks() as usize * 10;
        for phase in [
            AllgatherPhase::FlatRing,
            AllgatherPhase::MhaInter(MhaInterConfig::default()),
        ] {
            let built = mha::collectives::build_ring_allreduce(grid, elems, phase, &spec).unwrap();
            assert!(mha::sched::check_races(&built.sched).is_empty());
            verify_allreduce_sum_f32(
                &built.sched,
                &built.send,
                &built.recv,
                elems,
                Mode::Threaded(4),
            )
            .unwrap();
            assert!(sim.run(&built.sched).unwrap().makespan > 0.0);
        }
    }
}

#[test]
fn simulator_and_executor_agree_on_schedule_structure() {
    // The two back-ends must accept exactly the same schedules.
    let spec = ClusterSpec::thor();
    let sim = Simulator::new(spec.clone()).unwrap();
    let built = AllgatherAlgo::MhaInter(MhaInterConfig::default())
        .build(ProcGrid::new(2, 3), 32, &spec)
        .unwrap();
    let store = mha::exec::BufferStore::new(&built.sched);
    mha::exec::run_threaded(&built.sched, &store, 4).unwrap();
    sim.run(&built.sched).unwrap();
}

#[test]
fn trace_covers_every_op_and_is_consistent() {
    let spec = ClusterSpec::thor();
    let sim = Simulator::new(spec.clone()).unwrap();
    let built = AllgatherAlgo::Ring
        .build(ProcGrid::new(2, 2), 1024, &spec)
        .unwrap();
    let res = sim
        .run_with(&built.sched, mha::simnet::SimConfig { trace: true })
        .unwrap();
    let trace = res.trace.unwrap();
    assert_eq!(trace.spans().len(), built.sched.ops().len());
    for span in trace.spans() {
        assert!(span.ready <= span.start);
        assert!(span.start < span.end);
        assert!(span.end <= res.makespan + 1e-12);
    }
    assert!((trace.makespan() - res.makespan).abs() < 1e-12);
}
