//! Extension experiment: the multi-HCA-aware recipe applied to Broadcast
//! (the paper's future work mentions "other collectives") — hierarchical +
//! segmented + shm-overlapped vs the flat binomial tree. Runs as one
//! campaign (see `mha_bench::campaign`).

use mha_apps::report::{fmt_bytes, Table};
use mha_bench::campaign::{run_campaign, CampaignConfig, CampaignPoint, ConfigKey};
use mha_collectives::{build_binomial_bcast, build_mha_bcast};
use mha_sched::{ProcGrid, RankId};
use mha_simnet::{size_sweep, ClusterSpec};

fn main() {
    mha_bench::apply_check_flag();
    let spec = ClusterSpec::thor();
    let grid = ProcGrid::new(8, 16);
    let sizes = size_sweep(64 * 1024, 16 << 20);
    let mut cells = Vec::new();
    for &msg in &sizes {
        let key = ConfigKey::new("bcast/binomial", grid, msg, &spec);
        cells.push(CampaignPoint::sim(
            "binomial",
            key,
            spec.clone(),
            move || Ok(build_binomial_bcast(grid, msg, RankId(0)).sched),
        ));
        let key = ConfigKey::new("bcast/mha", grid, msg, &spec);
        let spec2 = spec.clone();
        cells.push(CampaignPoint::sim("mha", key, spec.clone(), move || {
            build_mha_bcast(grid, msg, RankId(0), 256 * 1024, &spec2)
                .map(|b| b.sched)
                .map_err(|e| format!("{e:?}"))
        }));
    }
    let report = run_campaign(&cells, &CampaignConfig::from_env()).unwrap();
    let mut t = Table::new(
        "Extension: Broadcast, 8 nodes x 16 PPN (segment = 256 KB)",
        "msg_bytes",
        vec![
            "binomial_us".into(),
            "mha_bcast_us".into(),
            "gain_pct".into(),
        ],
    );
    for (i, &msg) in sizes.iter().enumerate() {
        let t_flat = report.value(2 * i);
        let t_mha = report.value(2 * i + 1);
        t.push(
            fmt_bytes(msg),
            vec![t_flat, t_mha, (1.0 - t_mha / t_flat) * 100.0],
        );
    }
    mha_bench::emit(&t, "ablate_bcast");
}
