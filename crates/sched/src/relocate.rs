//! Relocating a schedule onto a node subset of a larger cluster.
//!
//! A collective schedule is built against its own compact [`ProcGrid`]
//! (`nodes × ppn`, ranks `0..nodes*ppn`). The multi-tenant traffic layer
//! places such a job onto an arbitrary subset of a shared cluster's nodes;
//! [`relocate_onto`] performs the mechanical half of that placement: every
//! rank, node and buffer owner is remapped through the placement's node
//! list while the op DAG — dependencies, byte counts, channels, steps,
//! release delays — is preserved verbatim.
//!
//! The transform is intentionally *structure-preserving*: op `i` of the
//! relocated schedule is op `i` of the original with its endpoints renamed,
//! so a relocated job priced alone on the cluster is bit-identical to the
//! original priced on its own grid (all cluster nodes are homogeneous; the
//! tenant oracle in `mha-conformance` holds that bar).

use crate::buffer::BufKind;
use crate::grid::ProcGrid;
use crate::ids::{NodeId, RankId};
use crate::op::OpKind;
use crate::schedule::Schedule;

/// Why a relocation was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelocateError {
    /// The placement's node list length differs from the job grid's node
    /// count.
    NodeCountMismatch {
        /// Nodes the job's grid spans.
        job_nodes: u32,
        /// Nodes the placement provides.
        placed: usize,
    },
    /// A placement entry points outside the cluster grid.
    NodeOutOfRange {
        /// The offending cluster node.
        node: u32,
        /// Nodes in the cluster grid.
        cluster_nodes: u32,
    },
    /// The same cluster node appears twice in one placement.
    DuplicateNode(u32),
    /// The job's ppn differs from the cluster's ppn. Placements are
    /// whole-node: local rank indices (and hence NUMA socket assignments)
    /// must be preserved exactly for relocation to be latency-neutral.
    PpnMismatch {
        /// Processes per node of the job grid.
        job_ppn: u32,
        /// Processes per node of the cluster grid.
        cluster_ppn: u32,
    },
}

impl std::fmt::Display for RelocateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RelocateError::NodeCountMismatch { job_nodes, placed } => write!(
                f,
                "placement covers {placed} nodes but the job grid spans {job_nodes}"
            ),
            RelocateError::NodeOutOfRange {
                node,
                cluster_nodes,
            } => write!(
                f,
                "placement node {node} outside the {cluster_nodes}-node cluster"
            ),
            RelocateError::DuplicateNode(n) => {
                write!(f, "placement lists cluster node {n} twice")
            }
            RelocateError::PpnMismatch {
                job_ppn,
                cluster_ppn,
            } => write!(
                f,
                "job ppn {job_ppn} differs from cluster ppn {cluster_ppn} (placements are whole-node)"
            ),
        }
    }
}

impl std::error::Error for RelocateError {}

/// Checks that `nodes` is a valid whole-node placement of a `job` grid
/// onto a `cluster` grid: one distinct in-range cluster node per job node,
/// equal ppn.
pub fn validate_placement(
    job: &ProcGrid,
    cluster: &ProcGrid,
    nodes: &[u32],
) -> Result<(), RelocateError> {
    if job.ppn() != cluster.ppn() {
        return Err(RelocateError::PpnMismatch {
            job_ppn: job.ppn(),
            cluster_ppn: cluster.ppn(),
        });
    }
    if nodes.len() != job.nodes() as usize {
        return Err(RelocateError::NodeCountMismatch {
            job_nodes: job.nodes(),
            placed: nodes.len(),
        });
    }
    let mut seen = vec![false; cluster.nodes() as usize];
    for &n in nodes {
        if n >= cluster.nodes() {
            return Err(RelocateError::NodeOutOfRange {
                node: n,
                cluster_nodes: cluster.nodes(),
            });
        }
        if std::mem::replace(&mut seen[n as usize], true) {
            return Err(RelocateError::DuplicateNode(n));
        }
    }
    Ok(())
}

/// Rewrites `sch` to run on cluster node `nodes[n]` wherever it used its
/// own node `n`, returning a schedule over the `cluster` grid. Rank `r`
/// (job node `n`, local index `l`) becomes cluster rank
/// `nodes[n] * ppn + l`; buffer owners are remapped the same way and
/// everything else — ops, dependencies, lengths, channels, steps, labels,
/// release delays — is carried over unchanged.
pub fn relocate_onto(
    sch: &Schedule,
    cluster: ProcGrid,
    nodes: &[u32],
) -> Result<Schedule, RelocateError> {
    validate_placement(sch.grid(), &cluster, nodes)?;
    let job = *sch.grid();
    let map_node = |n: NodeId| NodeId(nodes[n.index()]);
    let map_rank = |r: RankId| {
        let n = job.node_of(r);
        let l = job.local_index(r);
        cluster.rank_on(map_node(n), l)
    };

    let buffers = sch
        .buffers()
        .iter()
        .map(|b| {
            let mut b = b.clone();
            b.kind = match b.kind {
                BufKind::Private(r) => BufKind::Private(map_rank(r)),
                BufKind::NodeShared(n) => BufKind::NodeShared(map_node(n)),
            };
            b
        })
        .collect();

    let ops = sch
        .ops()
        .iter()
        .map(|op| {
            let mut op = op.clone();
            op.kind = match op.kind {
                OpKind::Transfer {
                    src_rank,
                    dst_rank,
                    src,
                    dst,
                    len,
                    channel,
                } => OpKind::Transfer {
                    src_rank: map_rank(src_rank),
                    dst_rank: map_rank(dst_rank),
                    src,
                    dst,
                    len,
                    channel,
                },
                OpKind::Copy {
                    actor,
                    src,
                    dst,
                    len,
                } => OpKind::Copy {
                    actor: map_rank(actor),
                    src,
                    dst,
                    len,
                },
                OpKind::Reduce {
                    actor,
                    acc,
                    operand,
                    len,
                    dtype,
                    op,
                } => OpKind::Reduce {
                    actor: map_rank(actor),
                    acc,
                    operand,
                    len,
                    dtype,
                    op,
                },
                OpKind::Compute { actor, flops } => OpKind::Compute {
                    actor: map_rank(actor),
                    flops,
                },
            };
            op
        })
        .collect();

    let release = (0..sch.ops().len())
        .map(|i| sch.release_of(crate::ids::OpId::from(i)))
        .collect::<Vec<_>>();
    let release = if sch.has_releases() {
        release
    } else {
        Vec::new()
    };

    Ok(Schedule::from_parts(
        cluster,
        buffers,
        ops,
        sch.name().to_string(),
        release,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::Loc;
    use crate::builder::ScheduleBuilder;
    use crate::ids::OpId;
    use crate::op::Channel;

    fn job() -> Schedule {
        let grid = ProcGrid::new(2, 2);
        let mut b = ScheduleBuilder::new(grid, "job");
        let s = b.private_buf(RankId(0), 64, "s");
        let d = b.private_buf(RankId(2), 64, "d");
        let shm = b.shared_buf(NodeId(1), 64, "shm");
        let t = b.transfer(
            RankId(0),
            RankId(2),
            Loc::new(s, 0),
            Loc::new(d, 0),
            64,
            Channel::AllRails,
            &[],
            0,
        );
        b.copy(RankId(2), Loc::new(d, 0), Loc::new(shm, 0), 64, &[t], 1);
        b.set_release(OpId(0), 2.5e-6);
        b.finish()
    }

    #[test]
    fn ranks_nodes_and_buffers_are_remapped() {
        let sch = job();
        let cluster = ProcGrid::new(8, 2);
        let out = relocate_onto(&sch, cluster, &[5, 3]).unwrap();
        assert_eq!(out.grid(), &cluster);
        // Job rank 0 (node 0, local 0) -> cluster node 5 -> rank 10;
        // job rank 2 (node 1, local 0) -> cluster node 3 -> rank 6.
        match &out.ops()[0].kind {
            OpKind::Transfer {
                src_rank, dst_rank, ..
            } => {
                assert_eq!(*src_rank, RankId(10));
                assert_eq!(*dst_rank, RankId(6));
            }
            other => panic!("unexpected kind {other:?}"),
        }
        assert_eq!(out.buffers()[0].kind, BufKind::Private(RankId(10)));
        assert_eq!(out.buffers()[1].kind, BufKind::Private(RankId(6)));
        assert_eq!(out.buffers()[2].kind, BufKind::NodeShared(NodeId(3)));
        // Structure is untouched.
        assert_eq!(out.ops()[1].deps, vec![OpId(0)]);
        assert_eq!(out.release_of(OpId(0)), 2.5e-6);
        assert_eq!(out.release_of(OpId(1)), 0.0);
        assert!(crate::validate(&out, Some(2)).is_ok());
    }

    #[test]
    fn identity_placement_preserves_everything() {
        let sch = job();
        let out = relocate_onto(&sch, *sch.grid(), &[0, 1]).unwrap();
        assert_eq!(format!("{:?}", out.ops()), format!("{:?}", sch.ops()));
        assert_eq!(
            format!("{:?}", out.buffers()),
            format!("{:?}", sch.buffers())
        );
    }

    #[test]
    fn invalid_placements_are_rejected() {
        let sch = job();
        let cluster = ProcGrid::new(4, 2);
        assert_eq!(
            relocate_onto(&sch, cluster, &[0]).unwrap_err(),
            RelocateError::NodeCountMismatch {
                job_nodes: 2,
                placed: 1
            }
        );
        assert_eq!(
            relocate_onto(&sch, cluster, &[0, 4]).unwrap_err(),
            RelocateError::NodeOutOfRange {
                node: 4,
                cluster_nodes: 4
            }
        );
        assert_eq!(
            relocate_onto(&sch, cluster, &[1, 1]).unwrap_err(),
            RelocateError::DuplicateNode(1)
        );
        assert_eq!(
            relocate_onto(&sch, ProcGrid::new(4, 4), &[0, 1]).unwrap_err(),
            RelocateError::PpnMismatch {
                job_ppn: 2,
                cluster_ppn: 4
            }
        );
    }
}
