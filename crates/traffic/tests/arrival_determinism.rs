//! Satellite property: traffic scenarios are deterministic functions of
//! their seed — and of nothing else.
//!
//! * Same seed ⇒ byte-identical job traces and per-tenant percentile
//!   CSVs, whether the offered-load campaign runs on 1, 2 or 8 workers.
//! * Different seeds ⇒ distinct arrival sequences (times, placements).

use mha_bench::campaign::CampaignConfig;
use mha_bench::traffic::{offered_load_table, TrafficSweep};
use mha_simnet::ClusterSpec;
use mha_traffic::{
    job_trace_csv, run_traffic, sample_jobs, tenant_csv, tenant_stats, Arrival, PlacementPolicy,
    TrafficSpec, WorkloadMix,
};

fn spec(seed: u64) -> TrafficSpec {
    TrafficSpec {
        cluster: ClusterSpec::thor(),
        nodes: 8,
        ppn: 2,
        arrival: Arrival::Poisson {
            rate_hz: 2.0e4,
            jobs: 12,
        },
        mix: WorkloadMix::paper_default(8),
        policy: PlacementPolicy::Random,
        tenants: 3,
        seed,
    }
}

#[test]
fn same_seed_reproduces_traces_and_csvs_byte_identically() {
    let s = spec(0xA11);
    let r1 = run_traffic(&s).unwrap();
    let r2 = run_traffic(&s).unwrap();
    assert_eq!(
        job_trace_csv(&r1),
        job_trace_csv(&r2),
        "job trace must be byte-stable under the same seed"
    );
    assert_eq!(
        tenant_csv(&tenant_stats(&r1, s.ppn)),
        tenant_csv(&tenant_stats(&r2, s.ppn)),
        "tenant percentile CSV must be byte-stable under the same seed"
    );
    assert_eq!(r1.makespan.to_bits(), r2.makespan.to_bits());
}

#[test]
fn different_seeds_draw_distinct_arrival_sequences() {
    let a = sample_jobs(&spec(1));
    let b = sample_jobs(&spec(2));
    assert_eq!(a.len(), b.len());
    let releases =
        |js: &[mha_traffic::JobSpec]| js.iter().map(|j| j.release.to_bits()).collect::<Vec<_>>();
    assert_ne!(
        releases(&a),
        releases(&b),
        "different seeds must move the arrival times"
    );
    let described =
        |js: &[mha_traffic::JobSpec]| js.iter().map(|j| j.describe()).collect::<Vec<_>>();
    assert_ne!(described(&a), described(&b));
}

#[test]
fn offered_load_campaign_is_byte_identical_across_worker_counts() {
    let sweep = TrafficSweep {
        jobs: 10,
        loads_hz: vec![2.0e3, 1.6e4],
        ..TrafficSweep::thor_default()
    };
    let csvs: Vec<String> = [1usize, 2, 8]
        .iter()
        .map(|&w| {
            offered_load_table(&sweep, &CampaignConfig::default().with_workers(w))
                .unwrap()
                .to_csv()
        })
        .collect();
    assert_eq!(csvs[0], csvs[1], "1 vs 2 workers diverged");
    assert_eq!(csvs[0], csvs[2], "1 vs 8 workers diverged");
    assert!(csvs[0].contains("p99_us") && csvs[0].contains("jain"));
}

#[test]
fn campaign_seed_moves_the_table() {
    let sweep = TrafficSweep {
        jobs: 8,
        loads_hz: vec![8.0e3],
        ..TrafficSweep::thor_default()
    };
    let at_seed = |seed| {
        let cfg = CampaignConfig {
            seed,
            ..CampaignConfig::default()
        };
        offered_load_table(&sweep, &cfg).unwrap().to_csv()
    };
    assert_ne!(
        at_seed(0),
        at_seed(1),
        "campaign seed must reach the scenario"
    );
}
