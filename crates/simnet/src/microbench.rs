//! OSU-style point-to-point micro-benchmarks on the simulator.
//!
//! These regenerate the measurements behind the paper's motivation figures:
//! Figure 1 (intra-node CMA vs inter-node 1-HCA vs 2-HCA bandwidth) and
//! Figure 3 (inter-node latency with one and two HCAs). The harness mirrors
//! `osu_bw` (a window of back-to-back non-blocking sends) and `osu_latency`
//! (a ping-pong) — deterministic simulation makes warm-up iterations moot.

use mha_sched::{Channel, Loc, ProcGrid, RankId, ScheduleBuilder};

use crate::engine::{SimError, Simulator};

/// Which pair of processes the benchmark runs between.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Two ranks on one node, communicating over CMA.
    IntraNode,
    /// Two ranks on two nodes, communicating over the rails
    /// (round-robin/striped by the pt2pt layer's policy).
    InterNode,
}

fn pair_grid(placement: Placement) -> (ProcGrid, RankId, RankId) {
    match placement {
        Placement::IntraNode => (ProcGrid::single_node(2), RankId(0), RankId(1)),
        Placement::InterNode => (ProcGrid::new(2, 1), RankId(0), RankId(1)),
    }
}

fn channel_for(placement: Placement) -> Channel {
    match placement {
        Placement::IntraNode => Channel::Cma,
        Placement::InterNode => Channel::AllRails,
    }
}

/// One-way latency (microseconds) of a `len`-byte message — the `osu_latency`
/// ping-pong divided by two.
pub fn pt2pt_latency_us(
    sim: &Simulator,
    placement: Placement,
    len: usize,
) -> Result<f64, SimError> {
    let (grid, a, b) = pair_grid(placement);
    let ch = channel_for(placement);
    let mut sb = ScheduleBuilder::new(grid, "osu_latency");
    let abuf = sb.private_buf(a, len, "a");
    let bbuf = sb.private_buf(b, len, "b");
    let ping = sb.transfer(a, b, Loc::new(abuf, 0), Loc::new(bbuf, 0), len, ch, &[], 0);
    sb.transfer(
        b,
        a,
        Loc::new(bbuf, 0),
        Loc::new(abuf, 0),
        len,
        ch,
        &[ping],
        1,
    );
    let res = sim.run(&sb.finish().freeze())?;
    Ok(res.latency_us() / 2.0)
}

/// Uni-directional bandwidth (MB/s) of `len`-byte messages with a send
/// window of `window` messages in flight — the `osu_bw` pattern.
pub fn pt2pt_bandwidth_mbps(
    sim: &Simulator,
    placement: Placement,
    len: usize,
    window: usize,
) -> Result<f64, SimError> {
    assert!(window > 0, "window must be positive");
    let (grid, a, b) = pair_grid(placement);
    let ch = channel_for(placement);
    let mut sb = ScheduleBuilder::new(grid, "osu_bw");
    let abuf = sb.private_buf(a, len * window, "a");
    let bbuf = sb.private_buf(b, len * window, "b");
    for w in 0..window {
        sb.transfer(
            a,
            b,
            Loc::new(abuf, w * len),
            Loc::new(bbuf, w * len),
            len,
            ch,
            &[],
            0,
        );
    }
    let res = sim.run(&sb.finish().freeze())?;
    let bytes = (len * window) as f64;
    Ok(bytes / res.makespan / 1e6)
}

/// The standard OSU message-size sweep: powers of two from `lo` to `hi`
/// inclusive.
pub fn size_sweep(lo: usize, hi: usize) -> Vec<usize> {
    assert!(lo > 0 && lo <= hi, "need 0 < lo <= hi");
    let mut v = Vec::new();
    let mut m = lo;
    while m <= hi {
        v.push(m);
        m *= 2;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::ClusterSpec;

    fn sim(rails: u8) -> Simulator {
        Simulator::new(ClusterSpec::thor_with_rails(rails)).unwrap()
    }

    #[test]
    fn inter_node_bandwidth_doubles_with_second_rail() {
        // The headline of Figure 1.
        let len = 4 << 20;
        let bw1 = pt2pt_bandwidth_mbps(&sim(1), Placement::InterNode, len, 64).unwrap();
        let bw2 = pt2pt_bandwidth_mbps(&sim(2), Placement::InterNode, len, 64).unwrap();
        let ratio = bw2 / bw1;
        assert!(ratio > 1.85 && ratio < 2.1, "ratio = {ratio}");
    }

    #[test]
    fn intra_node_bandwidth_roughly_equals_one_rail() {
        // Figure 1: "bandwidth of inter-node communication with one HCA is
        // approximately equal to that of intra-node".
        let len = 4 << 20;
        let intra = pt2pt_bandwidth_mbps(&sim(2), Placement::IntraNode, len, 64).unwrap();
        let inter1 = pt2pt_bandwidth_mbps(&sim(1), Placement::InterNode, len, 64).unwrap();
        let ratio = intra / inter1;
        assert!(ratio > 0.8 && ratio < 1.2, "ratio = {ratio}");
    }

    #[test]
    fn large_message_latency_halves_with_striping() {
        // Figure 3: striping cuts large-message latency roughly in half.
        let len = 4 << 20;
        let l1 = pt2pt_latency_us(&sim(1), Placement::InterNode, len).unwrap();
        let l2 = pt2pt_latency_us(&sim(2), Placement::InterNode, len).unwrap();
        let ratio = l1 / l2;
        assert!(ratio > 1.8 && ratio < 2.1, "ratio = {ratio}");
    }

    #[test]
    fn small_message_latency_unaffected_by_rail_count() {
        // Below the striping threshold the second rail does not help a
        // single message stream.
        let len = 4096;
        let l1 = pt2pt_latency_us(&sim(1), Placement::InterNode, len).unwrap();
        let l2 = pt2pt_latency_us(&sim(2), Placement::InterNode, len).unwrap();
        assert!((l1 / l2 - 1.0).abs() < 0.05, "{l1} vs {l2}");
    }

    #[test]
    fn bandwidth_increases_with_message_size() {
        let sim = sim(2);
        let sizes = size_sweep(8 * 1024, 4 << 20);
        let bws: Vec<f64> = sizes
            .iter()
            .map(|&m| pt2pt_bandwidth_mbps(&sim, Placement::InterNode, m, 64).unwrap())
            .collect();
        for w in bws.windows(2) {
            assert!(w[1] >= w[0] * 0.99, "bandwidth not increasing: {bws:?}");
        }
        // Large messages approach 2 rails' worth of bandwidth (in MB/s).
        assert!(bws.last().unwrap() > &20_000.0);
    }

    #[test]
    fn size_sweep_is_powers_of_two() {
        assert_eq!(size_sweep(8, 64), vec![8, 16, 32, 64]);
    }

    #[test]
    #[should_panic(expected = "need 0 < lo <= hi")]
    fn bad_sweep_rejected() {
        size_sweep(64, 8);
    }
}
