//! The future-work experiment (paper Section 7): 3-level NUMA-aware
//! Allgather versus the NUMA-blind 2-level design on a dual-socket
//! cluster model, across message sizes.

use mha_apps::report::{fmt_bytes, Table};
use mha_collectives::mha::{build_mha_inter, build_mha_numa3, MhaInterConfig, Numa3Config};
use mha_sched::ProcGrid;
use mha_simnet::{size_sweep, ClusterSpec, Simulator};

fn main() {
    mha_bench::apply_check_flag();
    let spec = ClusterSpec::thor_numa();
    let sim = Simulator::new(spec.clone()).unwrap();
    let grid = ProcGrid::new(4, 16);
    let mut t = Table::new(
        "Future work: 3-level NUMA-aware vs 2-level NUMA-blind, 4 nodes x 16 PPN \
         (dual-socket, 7 GB/s effective cross-socket copies)",
        "msg_bytes",
        vec![
            "2level_blind_us".into(),
            "3level_numa_us".into(),
            "3level_no_offload_us".into(),
            "gain_pct".into(),
        ],
    );
    for msg in size_sweep(4096, 1 << 20) {
        let blind = build_mha_inter(grid, msg, MhaInterConfig::default(), &spec).unwrap();
        let aware = build_mha_numa3(grid, msg, Numa3Config::default(), &spec).unwrap();
        let aware_noloop = build_mha_numa3(
            grid,
            msg,
            Numa3Config {
                offload_xsocket: false,
            },
            &spec,
        )
        .unwrap();
        let t_blind = sim.run(&blind.sched).unwrap().latency_us();
        let t_aware = sim.run(&aware.sched).unwrap().latency_us();
        let t_noloop = sim.run(&aware_noloop.sched).unwrap().latency_us();
        t.push(
            fmt_bytes(msg),
            vec![
                t_blind,
                t_aware,
                t_noloop,
                (1.0 - t_aware / t_blind) * 100.0,
            ],
        );
    }
    mha_bench::emit(&t, "ablate_numa");
}
