//! Figure 4: step structure of Direct Spread vs MHA-intra with 4 processes
//! and 2 HCAs — the offloaded transfers leave only two CPU steps. The two
//! latency cells run as campaign points (see `mha_bench::campaign`); the
//! op dumps are rendered at assembly.

use mha_bench::campaign::{run_campaign, CampaignConfig, CampaignPoint, ConfigKey};
use mha_collectives::mha::{build_mha_intra, Offload};
use mha_collectives::AllgatherAlgo;
use mha_sched::{OpKind, ProcGrid};
use mha_simnet::{ClusterSpec, Simulator};
use std::fmt::Write as _;

fn dump(title: &str, built: &mha_collectives::Built, out: &mut String) {
    let _ = writeln!(out, "== {title} ({}) ==", built.sched.name());
    for op in built.sched.ops() {
        let what = match &op.kind {
            OpKind::Transfer {
                src_rank,
                dst_rank,
                channel,
                ..
            } => {
                format!("{src_rank} -> {dst_rank} via {channel:?}")
            }
            OpKind::Copy { actor, .. } => format!("self-copy @ {actor}"),
            other => format!("{other:?}"),
        };
        let _ = writeln!(out, "  step {:>2}: {what}", op.step);
    }
}

fn main() {
    mha_bench::apply_check_flag();
    let spec = ClusterSpec::thor();
    let sim = Simulator::new(spec.clone()).unwrap();
    let grid = ProcGrid::single_node(4);
    let msg = 4 << 20;
    let ds = AllgatherAlgo::DirectSpread.build(grid, msg, &spec).unwrap();
    let mha = build_mha_intra(grid, msg, Offload::Auto, &spec).unwrap();

    let ds_sched = ds.sched.clone();
    let mha_sched = mha.sched.clone();
    let cells = vec![
        CampaignPoint::sim(
            "direct_spread",
            ConfigKey::new("allgather/direct_spread", grid, msg, &spec),
            spec.clone(),
            move || Ok(ds_sched.clone()),
        ),
        CampaignPoint::sim(
            "mha_intra",
            ConfigKey::new("allgather/mha_intra_auto", grid, msg, &spec),
            spec.clone(),
            move || Ok(mha_sched.clone()),
        ),
    ];
    let report = run_campaign(&cells, &CampaignConfig::from_env()).unwrap();
    let t_ds = report.value(0);
    let t_mha = report.value(1);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 4: 4 processes, 4 MB blocks, 2 HCAs\n\
         Direct Spread: 3 CPU steps, {t_ds:.1} us\n\
         MHA-intra:     CPU steps overlap HCA transfers, {t_mha:.1} us \
         ({:.0}% faster)\n",
        (1.0 - t_mha / t_ds) * 100.0
    );
    dump("Direct Spread (Fig. 4a)", &ds, &mut out);
    dump("MHA-intra (Fig. 4b)", &mha, &mut out);
    mha_bench::emit_text(&out, "fig04_steps");
    mha_bench::emit_run_summary(&sim, &mha.sched, "fig04_steps");
}
