//! # mha-bench — Criterion benches and per-figure reproduction binaries
//!
//! One binary per table/figure in the paper's evaluation (see DESIGN.md's
//! experiment index): `cargo run --release -p mha-bench --bin fig11_intra_allgather`
//! prints the paper-style table and drops a CSV under `results/`.

#![warn(missing_docs)]

pub mod campaign;
pub mod traffic;

use std::path::PathBuf;

use mha_apps::report::{render_run_summary, Table};
use mha_sched::{FrozenSchedule, SummaryProbe};
use mha_simnet::Simulator;

/// Turns on invariant-check mode when `--check` is on the command line:
/// every simulated run is then audited by an
/// [`mha_sched::InvariantProbe`] (causality, per-resource capacity, byte
/// conservation) and panics on any violation. Implemented through
/// [`mha_simnet::set_check_enabled`] — a thread-safe programmatic override
/// of the `MHA_CHECK` environment variable, so it works regardless of when
/// the env cache was first read.
pub fn apply_check_flag() {
    if std::env::args().any(|a| a == "--check") {
        mha_simnet::set_check_enabled(Some(true));
        eprintln!("[--check: invariant probes active on every simulated run]");
    }
}

/// Loads the tuning table when `--tuned` is on the command line: the
/// serving half of the `mha-tune` autotuner. The table comes from
/// `MHA_TUNED_TABLE` if set, else `results/tuned_thor.mtab` (honoring
/// `MHA_RESULTS_DIR`). Returns `None` without the flag — the sweeps then
/// stay byte-identical to their untuned output. A flagged run that cannot
/// load its table is an error, not a silent fallback: the user asked for
/// tuned numbers.
pub fn apply_tuned_flag() -> Option<mha_collectives::TunedTable> {
    if !std::env::args().any(|a| a == "--tuned") {
        return None;
    }
    let path = std::env::var_os("MHA_TUNED_TABLE")
        .map(PathBuf::from)
        .unwrap_or_else(|| results_dir().join("tuned_thor.mtab"));
    match mha_collectives::TunedTable::load(&path) {
        Ok(t) => {
            eprintln!(
                "[--tuned: serving {} entries from {} (digest {:016x})]",
                t.len(),
                path.display(),
                t.digest()
            );
            Some(t)
        }
        Err(e) => {
            eprintln!(
                "error: --tuned requested but {} is unusable: {e}",
                path.display()
            );
            std::process::exit(2);
        }
    }
}

/// Directory the `fig*` binaries write CSVs into (`results/` at the
/// workspace root, honoring `MHA_RESULTS_DIR`).
pub fn results_dir() -> PathBuf {
    std::env::var_os("MHA_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Prints the table and saves `results/<name>.csv`.
pub fn emit(table: &Table, name: &str) {
    println!("{}", table.to_text());
    let dir = results_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.csv"));
    match std::fs::write(&path, table.to_csv()) {
        Ok(()) => println!("[saved {}]", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

/// Prints a free-form artifact (timelines, op dumps) and saves it as
/// `results/<name>.txt`.
pub fn emit_text(content: &str, name: &str) {
    println!("{content}");
    let dir = results_dir();
    if std::fs::create_dir_all(&dir).is_ok() {
        let path = dir.join(format!("{name}.txt"));
        if std::fs::write(&path, content).is_ok() {
            println!("[saved {}]", path.display());
        }
    }
}

/// Re-simulates `sched` with a [`SummaryProbe`] attached and prints the
/// per-rail/CPU/memory utilization + overlap block, saving it as
/// `results/<name>_summary.txt`. The `fig*` binaries call this once on a
/// representative workload after their sweep tables.
pub fn emit_run_summary(sim: &Simulator, sched: &FrozenSchedule, name: &str) {
    let mut probe = SummaryProbe::new();
    match sim.run_probed(sched, &mut probe) {
        Ok(_) => emit_text(
            &render_run_summary(&probe.finish()),
            &format!("{name}_summary"),
        ),
        Err(e) => eprintln!("warning: summary run for {name} failed: {e}"),
    }
}

/// A single inter-node `msg`-byte transfer striped over all rails — the
/// representative workload the microbenchmark figures (1/3) summarize.
pub fn pt2pt_rails_schedule(msg: usize) -> FrozenSchedule {
    use mha_sched::{Channel, Loc, ProcGrid, RankId, ScheduleBuilder};
    let mut b = ScheduleBuilder::new(ProcGrid::new(2, 1), "pt2pt-rails");
    let s = b.private_buf(RankId(0), msg, "s");
    let d = b.private_buf(RankId(1), msg, "d");
    b.transfer(
        RankId(0),
        RankId(1),
        Loc::new(s, 0),
        Loc::new(d, 0),
        msg,
        Channel::AllRails,
        &[],
        0,
    );
    b.finish().freeze()
}

/// The paper's "medium" message sweep for Figures 12–14 (256 B – 8 KB).
pub fn medium_sizes() -> Vec<usize> {
    mha_simnet::size_sweep(256, 8 * 1024)
}

/// The paper's "large" message sweep for Figures 12–14 (16 KB – 256 KB).
pub fn large_sizes() -> Vec<usize> {
    mha_simnet::size_sweep(16 * 1024, 256 * 1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweeps_match_paper_ranges() {
        let m = medium_sizes();
        assert_eq!(m.first(), Some(&256));
        assert_eq!(m.last(), Some(&8192));
        let l = large_sizes();
        assert_eq!(l.first(), Some(&16384));
        assert_eq!(l.last(), Some(&262144));
    }

    #[test]
    fn emit_text_writes_artifact() {
        std::env::set_var("MHA_RESULTS_DIR", "/tmp/mha-bench-selftest");
        emit_text("hello", "selftest");
        let body = std::fs::read_to_string("/tmp/mha-bench-selftest/selftest.txt").unwrap();
        assert_eq!(body, "hello");
        std::env::remove_var("MHA_RESULTS_DIR");
    }
}
