//! Ablation: graceful degradation under rail failures. Sweeps `k` rails
//! failing *mid-run* (at 2% of the fault-free makespan, while the rail
//! traffic is in flight) on an 8-rail cluster and compares two strategies
//! against the α–β model evaluated at `H − k` rails:
//!
//! * `oblivious`: the fault-oblivious schedule — `AllRails` flows already
//!   in flight on a dying rail stall, then re-issue on a survivor after
//!   the retry timeout; flows started after the fault resolve against the
//!   surviving set automatically;
//! * `aware`: the failure-aware build whose leader exchanges are re-tiled
//!   over the surviving set up front (its intra-node offload traffic is
//!   still `AllRails`, so mid-run faults cost both strategies the same
//!   in-flight stalls);
//! * `model`: `T(H − k)` — the ideal a degraded run should track (the
//!   conformance bar requires staying within 2x of it).
//!
//! The per-`k` simulations run as one campaign (see
//! `mha_bench::campaign`). The oblivious schedule is built once and
//! shared through the campaign cache across all eight fault timelines;
//! the `k = 0` row's timeline is empty, so its simulator is constructed
//! fault-free (`simulator_for` gates the fault machinery on
//! `!events.is_empty()`).

use mha_apps::report::Table;
use mha_bench::campaign::{run_campaign, CampaignConfig, CampaignPoint, ConfigKey};
use mha_collectives::mha::{build_mha_inter, build_mha_inter_degraded, MhaInterConfig};
use mha_model::{mha_inter_latency, ModelParams, Phase2};
use mha_sched::ProcGrid;
use mha_simnet::{ClusterSpec, FaultEvent, FaultKind, FaultSpec, Simulator, DEFAULT_RETRY_TIMEOUT};

fn main() {
    mha_bench::apply_check_flag();
    let rails = 8u8;
    let grid = ProcGrid::new(4, 4);
    let msg = 256 * 1024;
    let spec = ClusterSpec::thor_with_rails(rails);
    let cfg = MhaInterConfig::default();

    let oblivious = build_mha_inter(grid, msg, cfg, &spec).unwrap();
    let healthy = Simulator::new(spec.clone()).unwrap();
    let t_fault = 0.02 * healthy.run(&oblivious.sched).unwrap().makespan;

    let mut cells = Vec::new();
    for k in 0..rails {
        let down: Vec<u8> = (0..k).collect();
        let mut faults = FaultSpec::new(DEFAULT_RETRY_TIMEOUT);
        for &r in &down {
            faults = faults.with_event(FaultEvent {
                time: t_fault,
                rail: r,
                node: None,
                kind: FaultKind::Down,
            });
        }
        // One oblivious schedule serves every k: same key -> one build,
        // Arc-shared across the pool; only the fault timeline varies.
        let key = ConfigKey::new("ablate_faults/oblivious", grid, msg, &spec);
        let sched = oblivious.sched.clone();
        cells.push(CampaignPoint::sim_faulty(
            "oblivious",
            key,
            spec.clone(),
            Some(faults.clone()),
            move || Ok(sched.clone()),
        ));
        let key = ConfigKey::new("ablate_faults/aware", grid, msg, &spec).with_salt(u64::from(k));
        let spec2 = spec.clone();
        cells.push(CampaignPoint::sim_faulty(
            "aware",
            key,
            spec.clone(),
            Some(faults),
            move || {
                build_mha_inter_degraded(grid, msg, cfg, &spec2, &down)
                    .map(|b| b.sched)
                    .map_err(|e| format!("{e:?}"))
            },
        ));
    }
    let report = run_campaign(&cells, &CampaignConfig::from_env()).unwrap();

    let mut table = Table::new(
        "Ablation: MHA-inter latency (us), k of 8 rails fail mid-run, 4 nodes x 4 PPN, 256 KB",
        "k_down",
        vec![
            "oblivious_us".into(),
            "aware_us".into(),
            "model_us".into(),
            "aware_vs_model".into(),
        ],
    );
    for k in 0..rails {
        let i = usize::from(k);
        let t_obl = report.value(2 * i);
        let t_aware = report.value(2 * i + 1);
        let p = ModelParams::from_spec(&ClusterSpec::thor_with_rails(rails - k));
        let t_model = mha_inter_latency(&p, grid.nodes(), grid.ppn(), msg, Phase2::Ring) * 1e6;
        table.push(
            k.to_string(),
            vec![t_obl, t_aware, t_model, t_aware / t_model],
        );
    }
    mha_bench::emit(&table, "ablate_faults");
}
