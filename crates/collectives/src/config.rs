//! The crate's configuration currency: one serializable [`AlgoConfig`]
//! names any Allgather this crate can build, and one [`build`] dispatcher
//! turns it into a schedule.
//!
//! Everything upstream — the campaign runner's cache keys, the offline
//! autotuner's tuning-table entries (`mha-tune`), the `--tuned` serving
//! path in the `fig*` binaries — speaks `AlgoConfig`. The historical
//! `build_*` free functions and [`crate::AllgatherAlgo`] remain as thin
//! wrappers over [`build`], so their schedules (and the 14 golden
//! latencies pinned in `tests/golden_latencies.rs`) are bit-identical to
//! before the unification.
//!
//! An `AlgoConfig` carries the full design space the repo exposes:
//!
//! * the **family** (flat baselines, two-level leaders, MHA-intra/-inter,
//!   or a library surrogate's selection logic),
//! * the MHA-inter knobs: phase-2 algorithm, phase-3 overlap, Eq. 1's
//!   offload `d`, the Exchange pipeline **chunk** (a [`ComposePlan`] knob:
//!   rank-blocks per leader-exchange piece), and
//! * two environment overrides: a **stripe-threshold** override of the
//!   point-to-point striping policy (applied to the [`ClusterSpec`] via
//!   [`AlgoConfig::effective_spec`], for builds *and* pricing), and a
//!   **degraded rail set** (`down_rails`, the `RailSet` knob).
//!
//! Configs serialize to a stable `key=value` text form (the `.mtab`
//! tuning-table entry payload) and hash to a stable FNV-1a digest
//! ([`AlgoConfig::digest`]) that the campaign cache key derives from — one
//! hash path for schedule caching and tuning-table serving.

use std::borrow::Cow;

use mha_sched::{Fingerprinter, ProcGrid, RailSet, Topology};
use mha_simnet::ClusterSpec;

use crate::baselines::Library;
use crate::compose::{emit_plan, ComposePlan};
use crate::ctx::{BuildError, Built, Ctx};
use crate::mha::{resolve_offload, InterAlgo, MhaInterConfig, Offload};
use crate::{flat, twolevel};

/// The algorithm family an [`AlgoConfig`] selects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Flat ring (Section 2.2).
    Ring,
    /// Flat recursive doubling (power-of-two ranks).
    RecursiveDoubling,
    /// Bruck's algorithm (any rank count).
    Bruck,
    /// Flat direct spread / dissemination.
    DirectSpread,
    /// Single-leader two-level baseline (power-of-two nodes).
    SingleLeader,
    /// Multi-leader two-level baseline (Kandalla et al.).
    MultiLeader {
        /// Leader groups per node (must divide ppn).
        groups: u32,
    },
    /// The paper's multi-HCA aware intra-node design (single node only).
    MhaIntra,
    /// The paper's hierarchical multi-HCA aware design.
    MhaInter,
    /// A library surrogate's own selection logic at this point.
    Library(Library),
}

impl Family {
    /// Stable short token used by the text serialization and cache-key
    /// family strings.
    pub fn token(&self) -> String {
        match self {
            Family::Ring => "ring".into(),
            Family::RecursiveDoubling => "rd".into(),
            Family::Bruck => "bruck".into(),
            Family::DirectSpread => "direct-spread".into(),
            Family::SingleLeader => "single-leader".into(),
            Family::MultiLeader { groups } => format!("multi-leader:{groups}"),
            Family::MhaIntra => "mha-intra".into(),
            Family::MhaInter => "mha-inter".into(),
            Family::Library(Library::HpcX) => "hpcx".into(),
            Family::Library(Library::Mvapich2X) => "mvapich2x".into(),
        }
    }

    fn parse(tok: &str) -> Result<Self, String> {
        Ok(match tok {
            "ring" => Family::Ring,
            "rd" => Family::RecursiveDoubling,
            "bruck" => Family::Bruck,
            "direct-spread" => Family::DirectSpread,
            "single-leader" => Family::SingleLeader,
            "mha-intra" => Family::MhaIntra,
            "mha-inter" => Family::MhaInter,
            "hpcx" => Family::Library(Library::HpcX),
            "mvapich2x" => Family::Library(Library::Mvapich2X),
            other => {
                if let Some(g) = other.strip_prefix("multi-leader:") {
                    Family::MultiLeader {
                        groups: g.parse().map_err(|_| format!("bad groups in {other:?}"))?,
                    }
                } else {
                    return Err(format!("unknown family {other:?}"));
                }
            }
        })
    }
}

/// One point of the design space: everything [`build`] needs, nothing it
/// doesn't. See the module docs for the field groups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlgoConfig {
    /// Algorithm family.
    pub family: Family,
    /// MHA-inter phase-2 algorithm (ignored by other families).
    pub inter: InterAlgo,
    /// MHA-inter phase-3 overlap (ignored by other families).
    pub overlap: bool,
    /// HCA offload policy (MHA-intra gather / MHA-inter phase 1).
    pub offload: Offload,
    /// Exchange pipeline chunk in rank-blocks (`None` = whole node
    /// blocks, the paper's design). A [`ComposePlan`] knob: chunked
    /// pieces forward through the ring piece-wise, a finer pipeline than
    /// the block-granular one.
    pub chunk: Option<u32>,
    /// Overrides [`ClusterSpec::stripe_threshold`] for this config (a
    /// software pt2pt policy, hence legitimately tunable). Applied by
    /// [`AlgoConfig::effective_spec`] to builds and pricing alike.
    pub stripe_threshold: Option<usize>,
    /// Rails to build around (degraded MHA-inter exchange). Empty = all
    /// rails up.
    pub down_rails: Vec<u8>,
}

impl Default for AlgoConfig {
    /// The paper's proposed multi-node configuration: tuned-default
    /// MHA-inter (Ring, Auto offload, overlapped distribute).
    fn default() -> Self {
        AlgoConfig::mha_inter(MhaInterConfig::default())
    }
}

impl From<crate::AllgatherAlgo> for AlgoConfig {
    fn from(a: crate::AllgatherAlgo) -> Self {
        use crate::AllgatherAlgo as A;
        match a {
            A::Ring => AlgoConfig::flat(Family::Ring),
            A::RecursiveDoubling => AlgoConfig::flat(Family::RecursiveDoubling),
            A::Bruck => AlgoConfig::flat(Family::Bruck),
            A::DirectSpread => AlgoConfig::flat(Family::DirectSpread),
            A::SingleLeader => AlgoConfig::flat(Family::SingleLeader),
            A::MultiLeader { groups } => AlgoConfig::flat(Family::MultiLeader { groups }),
            A::MhaIntra { offload } => AlgoConfig {
                family: Family::MhaIntra,
                offload,
                ..AlgoConfig::flat(Family::MhaIntra)
            },
            A::MhaInter(cfg) => AlgoConfig::mha_inter(cfg),
        }
    }
}

impl AlgoConfig {
    /// A family with every knob at its neutral default.
    pub fn flat(family: Family) -> Self {
        AlgoConfig {
            family,
            inter: InterAlgo::Ring,
            overlap: true,
            offload: Offload::Auto,
            chunk: None,
            stripe_threshold: None,
            down_rails: Vec::new(),
        }
    }

    /// The MHA-inter design with the given phase configuration.
    pub fn mha_inter(cfg: MhaInterConfig) -> Self {
        AlgoConfig {
            family: Family::MhaInter,
            inter: cfg.inter,
            overlap: cfg.overlap,
            offload: cfg.offload,
            ..AlgoConfig::flat(Family::MhaInter)
        }
    }

    /// The MHA-inter phase configuration this config encodes.
    pub fn inter_cfg(&self) -> MhaInterConfig {
        MhaInterConfig {
            inter: self.inter,
            offload: self.offload,
            overlap: self.overlap,
        }
    }

    /// The cluster spec this config builds and prices against: the input
    /// spec with the stripe-threshold override applied (borrowed when
    /// there is nothing to override, so the common path stays
    /// allocation-free). The override changes [`ClusterSpec::digest`],
    /// which correctly separates cache entries and prices.
    pub fn effective_spec<'a>(&self, spec: &'a ClusterSpec) -> Cow<'a, ClusterSpec> {
        match self.stripe_threshold {
            Some(t) if t != spec.stripe_threshold => {
                let mut s = spec.clone();
                s.stripe_threshold = t;
                Cow::Owned(s)
            }
            _ => Cow::Borrowed(spec),
        }
    }

    /// Stable FNV-1a digest over every field — the one hash path shared
    /// by campaign cache keys (`mha_bench::ConfigKey::for_algo`) and
    /// tuning-table digests. Two configs collide iff they are equal (up
    /// to the 64-bit bound); every field is framed by a type tag.
    pub fn digest(&self) -> u64 {
        let mut fp = Fingerprinter::new();
        match self.family {
            Family::Ring => fp.push_u8(0),
            Family::RecursiveDoubling => fp.push_u8(1),
            Family::Bruck => fp.push_u8(2),
            Family::DirectSpread => fp.push_u8(3),
            Family::SingleLeader => fp.push_u8(4),
            Family::MultiLeader { groups } => fp.push_u8(5).push_u32(groups),
            Family::MhaIntra => fp.push_u8(6),
            Family::MhaInter => fp.push_u8(7),
            Family::Library(Library::HpcX) => fp.push_u8(8),
            Family::Library(Library::Mvapich2X) => fp.push_u8(9),
        };
        match self.inter {
            InterAlgo::Ring => fp.push_u8(0),
            InterAlgo::RecursiveDoubling => fp.push_u8(1),
        };
        fp.push_bool(self.overlap);
        match self.offload {
            Offload::None => fp.push_u8(0),
            Offload::Fixed(d) => fp.push_u8(1).push_u32(d),
            Offload::Auto => fp.push_u8(2),
        };
        match self.chunk {
            None => fp.push_bool(false),
            Some(c) => fp.push_bool(true).push_u32(c),
        };
        match self.stripe_threshold {
            None => fp.push_bool(false),
            Some(t) => fp.push_bool(true).push_usize(t),
        };
        fp.push_usize(self.down_rails.len());
        for &r in &self.down_rails {
            fp.push_u8(r);
        }
        fp.finish().0
    }

    /// Serializes to the stable one-line `key=value` form the `.mtab`
    /// tuning table stores ([`AlgoConfig::parse_kv`] round-trips it).
    pub fn to_kv(&self) -> String {
        let offload = match self.offload {
            Offload::None => "none".to_string(),
            Offload::Auto => "auto".to_string(),
            Offload::Fixed(d) => d.to_string(),
        };
        let opt = |v: Option<String>| v.unwrap_or_else(|| "-".into());
        let down = if self.down_rails.is_empty() {
            "-".to_string()
        } else {
            self.down_rails
                .iter()
                .map(u8::to_string)
                .collect::<Vec<_>>()
                .join(",")
        };
        format!(
            "family={} inter={} overlap={} offload={} chunk={} stripe={} down={}",
            self.family.token(),
            match self.inter {
                InterAlgo::Ring => "ring",
                InterAlgo::RecursiveDoubling => "rd",
            },
            u8::from(self.overlap),
            offload,
            opt(self.chunk.map(|c| c.to_string())),
            opt(self.stripe_threshold.map(|t| t.to_string())),
            down,
        )
    }

    /// Parses the [`AlgoConfig::to_kv`] form. Strict: every key must be
    /// present exactly once, unknown keys are rejected.
    pub fn parse_kv(text: &str) -> Result<Self, String> {
        let mut family = None;
        let mut inter = None;
        let mut overlap = None;
        let mut offload = None;
        let mut chunk = None;
        let mut stripe = None;
        let mut down = None;
        for tok in text.split_whitespace() {
            let (k, v) = tok
                .split_once('=')
                .ok_or_else(|| format!("token {tok:?} is not key=value"))?;
            let slot_taken = |name: &str| format!("duplicate key {name:?}");
            match k {
                "family" => {
                    if family.replace(Family::parse(v)?).is_some() {
                        return Err(slot_taken(k));
                    }
                }
                "inter" => {
                    let a = match v {
                        "ring" => InterAlgo::Ring,
                        "rd" => InterAlgo::RecursiveDoubling,
                        _ => return Err(format!("unknown inter {v:?}")),
                    };
                    if inter.replace(a).is_some() {
                        return Err(slot_taken(k));
                    }
                }
                "overlap" => {
                    let b = match v {
                        "1" => true,
                        "0" => false,
                        _ => return Err(format!("overlap must be 0/1, got {v:?}")),
                    };
                    if overlap.replace(b).is_some() {
                        return Err(slot_taken(k));
                    }
                }
                "offload" => {
                    let o = match v {
                        "none" => Offload::None,
                        "auto" => Offload::Auto,
                        n => Offload::Fixed(n.parse().map_err(|_| format!("bad offload {v:?}"))?),
                    };
                    if offload.replace(o).is_some() {
                        return Err(slot_taken(k));
                    }
                }
                "chunk" => {
                    let c = match v {
                        "-" => None,
                        n => Some(n.parse().map_err(|_| format!("bad chunk {v:?}"))?),
                    };
                    if chunk.replace(c).is_some() {
                        return Err(slot_taken(k));
                    }
                }
                "stripe" => {
                    let t = match v {
                        "-" => None,
                        n => Some(n.parse().map_err(|_| format!("bad stripe {v:?}"))?),
                    };
                    if stripe.replace(t).is_some() {
                        return Err(slot_taken(k));
                    }
                }
                "down" => {
                    let d: Vec<u8> = match v {
                        "-" => Vec::new(),
                        list => list
                            .split(',')
                            .map(|r| r.parse().map_err(|_| format!("bad rail in {v:?}")))
                            .collect::<Result<_, String>>()?,
                    };
                    if down.replace(d).is_some() {
                        return Err(slot_taken(k));
                    }
                }
                other => return Err(format!("unknown key {other:?}")),
            }
        }
        Ok(AlgoConfig {
            family: family.ok_or("missing family")?,
            inter: inter.ok_or("missing inter")?,
            overlap: overlap.ok_or("missing overlap")?,
            offload: offload.ok_or("missing offload")?,
            chunk: chunk.ok_or("missing chunk")?,
            stripe_threshold: stripe.ok_or("missing stripe")?,
            down_rails: down.ok_or("missing down")?,
        })
    }

    /// Whether [`build`] can succeed for this config on `grid` (the
    /// structural preconditions of the underlying builders).
    pub fn valid_for(&self, grid: ProcGrid) -> bool {
        match self.family {
            Family::RecursiveDoubling => grid.nranks().is_power_of_two(),
            Family::SingleLeader => grid.nodes().is_power_of_two(),
            Family::MultiLeader { groups } => groups > 0 && grid.ppn().is_multiple_of(groups),
            Family::MhaIntra => grid.nodes() == 1,
            Family::MhaInter => self.inter == InterAlgo::Ring || grid.nodes().is_power_of_two(),
            // Flat ring/Bruck/direct-spread and both library surrogates
            // build on any grid (the libraries' own selection logic never
            // picks an invalid algorithm).
            Family::Ring | Family::Bruck | Family::DirectSpread | Family::Library(_) => true,
        }
    }

    /// The nearest config in the design space that is valid for `grid` —
    /// what the tuning table's nearest-neighbor fallback hands out for
    /// off-grid queries. Identity when already valid; total (the result
    /// always satisfies [`AlgoConfig::valid_for`]).
    pub fn coerce_for(&self, grid: ProcGrid) -> AlgoConfig {
        let mut c = self.clone();
        if c.family == Family::MhaIntra && grid.nodes() != 1 {
            c.family = Family::MhaInter;
        }
        if c.family == Family::MhaInter && !c.valid_for(grid) {
            c.inter = InterAlgo::Ring;
        }
        if let Family::MultiLeader { groups } = c.family {
            if groups == 0 || !grid.ppn().is_multiple_of(groups) {
                c.family = Family::MultiLeader { groups: 1 };
            }
        }
        if !c.valid_for(grid) {
            // RD / single-leader on a non-power-of-two layout: the same
            // degradation the library surrogates apply.
            c.family = Family::Ring;
        }
        debug_assert!(c.valid_for(grid));
        c
    }
}

/// Builds the schedule `cfg` names, for `grid` and per-rank contribution
/// `msg`, against `spec` (with the config's stripe override applied) —
/// the single dispatch point every other build entry point now routes
/// through.
///
/// # Errors
///
/// The underlying family's [`BuildError`] (power-of-two preconditions,
/// bad parameters); [`AlgoConfig::valid_for`] predicts success.
pub fn build(
    cfg: &AlgoConfig,
    grid: ProcGrid,
    msg: usize,
    spec: &ClusterSpec,
) -> Result<Built, BuildError> {
    let eff = cfg.effective_spec(spec);
    let spec = eff.as_ref();
    match cfg.family {
        Family::Ring => Ok(flat::build_ring(grid, msg)),
        Family::RecursiveDoubling => flat::build_recursive_doubling(grid, msg),
        Family::Bruck => Ok(flat::build_bruck(grid, msg)),
        Family::DirectSpread => Ok(flat::build_direct_spread(grid, msg)),
        Family::SingleLeader => twolevel::build_single_leader(grid, msg),
        Family::MultiLeader { groups } => twolevel::build_multi_leader(grid, msg, groups),
        Family::MhaIntra => crate::mha::build_mha_intra(grid, msg, cfg.offload, spec),
        Family::Library(lib) => {
            // The surrogate's selection never yields Family::Library, so
            // this recursion terminates after one hop.
            build(&lib.select_allgather(grid, msg).into(), grid, msg, spec)
        }
        Family::MhaInter => build_mha_inter_cfg(cfg, grid, msg, spec),
    }
}

/// The MHA-inter arm of [`build`]: the 2-level `[Exchange, Gather]`
/// composition with the config's chunk and rail knobs applied. With no
/// chunk and no down rails the schedule (name included) is byte-identical
/// to the historical `build_mha_inter`.
fn build_mha_inter_cfg(
    cfg: &AlgoConfig,
    grid: ProcGrid,
    msg: usize,
    spec: &ClusterSpec,
) -> Result<Built, BuildError> {
    let rails = RailSet::excluding(spec.rails, &cfg.down_rails);
    let d = resolve_offload(cfg.offload, spec, grid.ppn(), msg);
    let mut name = format!(
        "mha-inter-{}(d={d}",
        match cfg.inter {
            InterAlgo::Ring => "ring",
            InterAlgo::RecursiveDoubling => "rd",
        }
    );
    if !cfg.overlap {
        name.push_str(",seq");
    }
    if let Some(c) = cfg.chunk {
        name.push_str(&format!(",c={c}"));
    }
    if !cfg.down_rails.is_empty() {
        name.push_str(&format!(",rails={}/{}", rails.len(), rails.total()));
    }
    name.push(')');
    let mut ctx = Ctx::new(grid, msg, name);
    let topo = Topology::two_level(grid.nodes(), grid.ppn());
    let plan = ComposePlan::mha_inter_chunked(cfg.inter_cfg(), cfg.chunk);
    emit_plan(&mut ctx, &topo, &plan, Some(spec), Some(&rails))?;
    Ok(ctx.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::testutil::assert_allgather_correct;
    use crate::AllgatherAlgo;
    use mha_simnet::Simulator;

    fn thor() -> ClusterSpec {
        ClusterSpec::thor()
    }

    fn ops_of(b: &Built) -> String {
        format!("{:?}", b.sched.ops())
    }

    fn sample_configs() -> Vec<AlgoConfig> {
        let mut v = vec![
            AlgoConfig::flat(Family::Ring),
            AlgoConfig::flat(Family::RecursiveDoubling),
            AlgoConfig::flat(Family::Bruck),
            AlgoConfig::flat(Family::DirectSpread),
            AlgoConfig::flat(Family::SingleLeader),
            AlgoConfig::flat(Family::MultiLeader { groups: 2 }),
            AlgoConfig::flat(Family::Library(Library::HpcX)),
            AlgoConfig::flat(Family::Library(Library::Mvapich2X)),
            AlgoConfig::default(),
        ];
        v.push(AlgoConfig {
            inter: InterAlgo::RecursiveDoubling,
            overlap: false,
            offload: Offload::Fixed(3),
            ..AlgoConfig::default()
        });
        v.push(AlgoConfig {
            chunk: Some(2),
            stripe_threshold: Some(4096),
            down_rails: vec![1],
            ..AlgoConfig::default()
        });
        v
    }

    #[test]
    fn dispatch_reproduces_every_legacy_builder_bit_for_bit() {
        let spec = thor();
        let grid = ProcGrid::new(4, 4);
        let msg = 4096;
        // Direct free-function builds (NOT through AllgatherAlgo::build,
        // which now delegates here) vs the dispatcher.
        let legacy: Vec<(AllgatherAlgo, Built)> = vec![
            (AllgatherAlgo::Ring, crate::flat::build_ring(grid, msg)),
            (
                AllgatherAlgo::RecursiveDoubling,
                crate::flat::build_recursive_doubling(grid, msg).unwrap(),
            ),
            (AllgatherAlgo::Bruck, crate::flat::build_bruck(grid, msg)),
            (
                AllgatherAlgo::DirectSpread,
                crate::flat::build_direct_spread(grid, msg),
            ),
            (
                AllgatherAlgo::SingleLeader,
                crate::twolevel::build_single_leader(grid, msg).unwrap(),
            ),
            (
                AllgatherAlgo::MultiLeader { groups: 2 },
                crate::twolevel::build_multi_leader(grid, msg, 2).unwrap(),
            ),
        ];
        for (algo, built) in legacy {
            let via_cfg = build(&AlgoConfig::from(algo), grid, msg, &spec).unwrap();
            assert_eq!(ops_of(&built), ops_of(&via_cfg), "{}", algo.name());
            assert_eq!(
                built.sched.fingerprint().0,
                via_cfg.sched.fingerprint().0,
                "{}",
                algo.name()
            );
        }
        // MHA-inter: pin the dispatcher against the historical emission
        // path (the composer on the two-level tree) and its name format.
        let cfg = MhaInterConfig::default();
        let composed = crate::compose::build_composed(
            &Topology::two_level(grid.nodes(), grid.ppn()),
            msg,
            &ComposePlan::mha_inter(cfg),
            &spec,
        )
        .unwrap();
        let via_cfg = build(&AlgoConfig::mha_inter(cfg), grid, msg, &spec).unwrap();
        assert_eq!(ops_of(&composed), ops_of(&via_cfg));
        // Legacy name format: no chunk/rails suffixes at defaults.
        let name = via_cfg.sched.name();
        assert!(name.starts_with("mha-inter-ring(d="), "{name}");
        assert!(!name.contains(",seq") && !name.contains(",c=") && !name.contains(",rails="));
        // Library families match the surrogates' own builds.
        for lib in [Library::HpcX, Library::Mvapich2X] {
            for msg in [256usize, 16 * 1024, 256 * 1024] {
                let direct = lib.build_allgather(grid, msg, &spec).unwrap();
                let via_cfg =
                    build(&AlgoConfig::flat(Family::Library(lib)), grid, msg, &spec).unwrap();
                assert_eq!(ops_of(&direct), ops_of(&via_cfg), "{}/{msg}", lib.name());
            }
        }
        // MHA-intra on a single node.
        let direct =
            crate::mha::build_mha_intra(ProcGrid::single_node(8), msg, Offload::Auto, &spec)
                .unwrap();
        let via_cfg = build(
            &AlgoConfig::flat(Family::MhaIntra),
            ProcGrid::single_node(8),
            msg,
            &spec,
        )
        .unwrap();
        assert_eq!(ops_of(&direct), ops_of(&via_cfg));
    }

    #[test]
    fn chunked_exchange_is_correct_and_distinct() {
        let spec = thor();
        let grid = ProcGrid::new(4, 4);
        for inter in [InterAlgo::Ring, InterAlgo::RecursiveDoubling] {
            for chunk in [1u32, 2, 3] {
                let cfg = AlgoConfig {
                    inter,
                    chunk: Some(chunk),
                    ..AlgoConfig::default()
                };
                let built = build(&cfg, grid, 64 * 1024, &spec).unwrap();
                assert_allgather_correct(&built);
                assert!(built.sched.name().contains(&format!("c={chunk}")));
            }
        }
        // chunk >= the node block collapses to the unchunked stream.
        let base = build(&AlgoConfig::default(), grid, 4096, &spec).unwrap();
        let wide = build(
            &AlgoConfig {
                chunk: Some(64),
                ..AlgoConfig::default()
            },
            grid,
            4096,
            &spec,
        )
        .unwrap();
        assert_eq!(
            format!("{:?}", base.sched.ops()),
            format!("{:?}", wide.sched.ops())
        );
    }

    #[test]
    fn chunked_ring_pipelines_finer_than_whole_blocks() {
        // The knob must do something: at large message sizes the
        // piece-wise forwarded ring differs from the block ring.
        let spec = thor();
        let grid = ProcGrid::new(8, 8);
        let base = build(&AlgoConfig::default(), grid, 256 * 1024, &spec).unwrap();
        let chunked = build(
            &AlgoConfig {
                chunk: Some(2),
                ..AlgoConfig::default()
            },
            grid,
            256 * 1024,
            &spec,
        )
        .unwrap();
        assert!(chunked.sched.ops().len() > base.sched.ops().len());
        let sim = Simulator::new(spec).unwrap();
        let t_base = sim.run(&base.sched).unwrap().latency_us();
        let t_chunked = sim.run(&chunked.sched).unwrap().latency_us();
        // Not asserting which wins — only that the knob changes the price.
        assert_ne!(t_base.to_bits(), t_chunked.to_bits());
    }

    #[test]
    fn stripe_override_changes_spec_and_price_only_when_different() {
        let spec = thor();
        let same = AlgoConfig {
            stripe_threshold: Some(spec.stripe_threshold),
            ..AlgoConfig::default()
        };
        assert!(matches!(same.effective_spec(&spec), Cow::Borrowed(_)));
        let low = AlgoConfig {
            stripe_threshold: Some(1024),
            ..AlgoConfig::default()
        };
        let eff = low.effective_spec(&spec);
        assert_eq!(eff.stripe_threshold, 1024);
        assert_ne!(eff.digest(), spec.digest());
    }

    #[test]
    fn degraded_config_matches_legacy_degraded_builder() {
        let spec = thor();
        let grid = ProcGrid::new(4, 2);
        for msg in [16usize, 64 * 1024] {
            let legacy = crate::mha::build_mha_inter_degraded(
                grid,
                msg,
                MhaInterConfig::default(),
                &spec,
                &[0],
            )
            .unwrap();
            let cfg = AlgoConfig {
                down_rails: vec![0],
                ..AlgoConfig::default()
            };
            let via_cfg = build(&cfg, grid, msg, &spec).unwrap();
            assert_eq!(ops_of(&legacy), ops_of(&via_cfg), "msg={msg}");
            assert_eq!(legacy.sched.name(), via_cfg.sched.name());
        }
    }

    #[test]
    fn kv_round_trips_every_sample() {
        for cfg in sample_configs() {
            let text = cfg.to_kv();
            let back = AlgoConfig::parse_kv(&text).unwrap();
            assert_eq!(cfg, back, "{text}");
            assert_eq!(cfg.digest(), back.digest());
        }
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "",
            "family=ring", // missing keys
            "family=warp inter=ring overlap=1 offload=auto chunk=- stripe=- down=-",
            "family=ring inter=ring overlap=2 offload=auto chunk=- stripe=- down=-",
            "family=ring inter=ring overlap=1 offload=auto chunk=- stripe=- down=- x=1",
            "family=ring family=ring inter=ring overlap=1 offload=auto chunk=- stripe=- down=-",
        ] {
            assert!(AlgoConfig::parse_kv(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn digest_distinguishes_every_field() {
        let base = AlgoConfig::default();
        let variants = [
            AlgoConfig::flat(Family::Ring),
            AlgoConfig {
                inter: InterAlgo::RecursiveDoubling,
                ..base.clone()
            },
            AlgoConfig {
                overlap: false,
                ..base.clone()
            },
            AlgoConfig {
                offload: Offload::Fixed(2),
                ..base.clone()
            },
            AlgoConfig {
                chunk: Some(4),
                ..base.clone()
            },
            AlgoConfig {
                stripe_threshold: Some(8192),
                ..base.clone()
            },
            AlgoConfig {
                down_rails: vec![0],
                ..base.clone()
            },
        ];
        for v in &variants {
            assert_ne!(base.digest(), v.digest(), "{v:?}");
        }
    }

    #[test]
    fn coercion_always_yields_a_buildable_config() {
        let spec = thor();
        let grids = [
            ProcGrid::new(3, 5),
            ProcGrid::new(1, 7),
            ProcGrid::new(6, 1),
            ProcGrid::new(2, 2),
        ];
        for cfg in sample_configs() {
            for grid in grids {
                let c = cfg.coerce_for(grid);
                assert!(c.valid_for(grid), "{cfg:?} -> {c:?} on {grid:?}");
                let built = build(&c, grid, 64, &spec).unwrap();
                assert_allgather_correct(&built);
            }
        }
    }
}
