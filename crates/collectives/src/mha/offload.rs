//! Offload sizing: how many of each rank's transfers go to the HCAs.
//!
//! Section 3.1 derives the optimal count analytically (Eq. 1) by equating
//! the CPU's and the HCAs' completion times:
//!
//! ```text
//! T_C(M) · (L − 1 − d) = T_H(M) · L · d
//!   ⇒ d = T_C(M) · (L − 1) / (T_H(M) · L + T_C(M))
//! ```
//!
//! and also proposes an empirical tuner (Figure 5) that sweeps the offload
//! size and finds the latency minimum — [`tune_offload`] implements that
//! sweep against the simulator.

use mha_simnet::{ClusterSpec, SimError, Simulator};

/// How many transfers each rank hands to the HCAs in MHA-intra.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Offload {
    /// No offload: plain Direct Spread over CMA.
    None,
    /// A fixed per-rank offload count (clamped to `L − 1`).
    Fixed(u32),
    /// The analytic optimum of Eq. 1 for the given cluster.
    Auto,
}

/// Eq. 1: the analytic optimal number of offloaded transfers per rank for
/// `l` processes exchanging `msg`-byte blocks on `spec`.
pub fn optimal_offload(spec: &ClusterSpec, l: u32, msg: usize) -> u32 {
    if l <= 1 {
        return 0;
    }
    let tc = spec.t_c(msg);
    let th = spec.t_h(msg);
    let d = tc * f64::from(l - 1) / (th * f64::from(l) + tc);
    (d.round() as u32).min(l - 1)
}

/// Resolves a policy to a concrete count.
pub fn resolve_offload(policy: Offload, spec: &ClusterSpec, l: u32, msg: usize) -> u32 {
    match policy {
        Offload::None => 0,
        Offload::Fixed(d) => d.min(l.saturating_sub(1)),
        Offload::Auto => optimal_offload(spec, l, msg),
    }
}

/// One point of the Figure 5 sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OffloadSweep {
    /// Offloaded transfers per rank.
    pub d: u32,
    /// Simulated Allgather latency in microseconds.
    pub latency_us: f64,
}

/// Empirical tuner (Figure 5): simulates MHA-intra for every offload size
/// `d ∈ 0..L` and returns the best `d` plus the full latency curve.
pub fn tune_offload(
    spec: &ClusterSpec,
    l: u32,
    msg: usize,
) -> Result<(u32, Vec<OffloadSweep>), SimError> {
    let sim = Simulator::new(spec.clone())?;
    let grid = mha_sched::ProcGrid::single_node(l);
    let mut curve = Vec::with_capacity(l as usize);
    let mut best = (0u32, f64::INFINITY);
    for d in 0..l.max(1) {
        let built = super::build_mha_intra(grid, msg, Offload::Fixed(d), spec)
            .expect("single-node grid is always valid for MHA-intra");
        let res = sim.run(&built.sched)?;
        let lat = res.latency_us();
        curve.push(OffloadSweep { d, latency_us: lat });
        if lat < best.1 {
            best = (d, lat);
        }
    }
    Ok((best.0, curve))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq1_balances_cpu_and_hca_time() {
        let spec = ClusterSpec::thor();
        let msg = 1 << 20;
        for l in [2u32, 4, 8, 16] {
            let d = optimal_offload(&spec, l, msg);
            assert!(d >= 1, "large messages should offload something (L={l})");
            assert!(d < l);
            // Check the balance within one transfer of optimum.
            let tc = spec.t_c(msg);
            let th = spec.t_h(msg);
            let cpu = tc * f64::from(l - 1 - d);
            let hca = th * f64::from(l) * f64::from(d);
            let imbalance = (cpu - hca).abs();
            let step = tc.max(th * f64::from(l));
            assert!(imbalance <= step, "L={l}: cpu={cpu} hca={hca}");
        }
    }

    #[test]
    fn offload_fraction_decays_with_more_processes() {
        // Section 5.2's expected trend: the offloaded share shrinks as L
        // grows, because the HCAs serve everyone.
        let spec = ClusterSpec::thor();
        let msg = 4 << 20;
        let frac = |l: u32| f64::from(optimal_offload(&spec, l, msg)) / f64::from(l - 1);
        assert!(frac(2) >= frac(4));
        assert!(frac(4) >= frac(8));
        assert!(frac(8) >= frac(16));
    }

    #[test]
    fn single_process_never_offloads() {
        assert_eq!(optimal_offload(&ClusterSpec::thor(), 1, 1 << 20), 0);
    }

    #[test]
    fn resolve_clamps_fixed_policy() {
        let spec = ClusterSpec::thor();
        assert_eq!(resolve_offload(Offload::Fixed(99), &spec, 4, 1024), 3);
        assert_eq!(resolve_offload(Offload::None, &spec, 4, 1024), 0);
        assert_eq!(resolve_offload(Offload::Fixed(2), &spec, 1, 1024), 0);
    }

    #[test]
    fn tuner_curve_is_v_shaped_for_large_messages() {
        // Figure 5: latency falls as offload grows, reaches an optimum,
        // then rises when the HCAs become the bottleneck.
        let spec = ClusterSpec::thor();
        let (best, curve) = tune_offload(&spec, 4, 4 << 20).unwrap();
        assert_eq!(curve.len(), 4);
        let no_offload = curve[0].latency_us;
        let all_offload = curve[3].latency_us;
        let best_lat = curve[best as usize].latency_us;
        assert!(best_lat < no_offload, "offload should help: {curve:?}");
        assert!(
            best_lat <= all_offload,
            "full offload is not optimal: {curve:?}"
        );
        assert!(best >= 1);
    }

    #[test]
    fn analytic_optimum_collapses_for_tiny_messages() {
        // For very small messages the rail startup (α_H > α_C) dominates
        // T_H, so Eq. 1 says: keep the work on the CPU.
        let spec = ClusterSpec::thor();
        assert_eq!(optimal_offload(&spec, 4, 64), 0);
        // …while for large messages it offloads a meaningful share.
        assert!(optimal_offload(&spec, 4, 4 << 20) >= 1);
    }

    #[test]
    fn tuner_offloads_at_least_as_much_as_eq1_under_congestion() {
        // Eq. 1 assumes an uncontended T_C; with many ranks the memory
        // system congests CMA (the `b`/`cg` factors of Section 4), making
        // the CPU path slower than the model thinks — so the empirical
        // optimum offloads *more*, never less. This gap is exactly why the
        // paper pairs the model with the Figure 5 tuner.
        let spec = ClusterSpec::thor();
        let msg = 1 << 20;
        for l in [2u32, 4, 8] {
            let analytic = optimal_offload(&spec, l, msg);
            let (tuned, _) = tune_offload(&spec, l, msg).unwrap();
            assert!(
                tuned >= analytic,
                "L={l}: tuned {tuned} below analytic {analytic}"
            );
            assert!(tuned < l, "L={l}: tuned {tuned} out of range");
        }
        // With only two ranks there is no congestion: they should agree.
        let (tuned2, _) = tune_offload(&spec, 2, msg).unwrap();
        assert_eq!(tuned2, optimal_offload(&spec, 2, msg));
    }
}
