//! The offline autotuner: runs the successive-halving search over the
//! Figure 12–14 grids and writes the versioned tuning table
//! (`results/tuned_thor.mtab` or `--out <path>` / `MHA_TUNED_TABLE`).
//!
//! `--reduced` tunes the CI smoke point set instead of the full grid;
//! campaign knobs (`MHA_CAMPAIGN_WORKERS`, `MHA_CAMPAIGN_SEED`, …) apply.
//! Exits non-zero if any tuned pick loses to an untuned family — that
//! would indicate a search bug, since the untuned families are rung-1
//! candidates by construction.

use mha_apps::report::{fmt_bytes, Table};
use mha_bench::campaign::CampaignConfig;
use mha_tune::{full_points, reduced_points, run_search};

fn main() {
    mha_bench::apply_check_flag();
    let args: Vec<String> = std::env::args().collect();
    let reduced = args.iter().any(|a| a == "--reduced");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from)
        .unwrap_or_else(mha_tune::default_table_path);

    let spec = mha_simnet::ClusterSpec::thor();
    let cfg = CampaignConfig::from_env();
    let points = if reduced {
        reduced_points(&spec)
    } else {
        full_points(&spec)
    };
    eprintln!(
        "[mha-tune: searching {} points ({} mode), {} workers]",
        points.len(),
        if reduced { "reduced" } else { "full" },
        cfg.workers
    );
    let outcome = run_search(&points, &spec, &cfg).unwrap();

    let mut t = Table::new(
        "mha-tune: tuned vs best untuned per point",
        "point",
        vec![
            "tuned_us".into(),
            "best_untuned_us".into(),
            "gain_pct".into(),
            "rung0".into(),
            "rung1".into(),
        ],
    );
    let mut losses = 0usize;
    for s in &outcome.summaries {
        let best = s.best_untuned_us();
        if s.tuned_us > best {
            eprintln!(
                "LOSS at {:?}: tuned {} > untuned {} ({})",
                s.point,
                s.tuned_us,
                best,
                s.winner.to_kv()
            );
            losses += 1;
        }
        t.push(
            format!(
                "{}x{} {} r{}",
                s.point.grid.nodes(),
                s.point.grid.ppn(),
                fmt_bytes(s.point.msg),
                s.point.rails_up
            ),
            vec![
                s.tuned_us,
                best,
                (1.0 - s.tuned_us / best) * 100.0,
                s.rung0 as f64,
                s.rung1 as f64,
            ],
        );
    }
    println!("{}", t.to_text());
    assert_eq!(
        losses, 0,
        "{losses} tuned picks lost to an untuned family — search bug"
    );

    if let Some(dir) = out_path.parent() {
        std::fs::create_dir_all(dir).unwrap();
    }
    outcome.table.save(&out_path).unwrap();
    println!(
        "[saved {} ({} entries, digest {:016x})]",
        out_path.display(),
        outcome.table.len(),
        outcome.table.digest()
    );
}
