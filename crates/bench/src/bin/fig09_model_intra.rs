//! Figure 9: validation of the MHA-intra cost model (Eq. 2) against the
//! simulator, 4 processes, 256 KB – 16 MB. The whole validation sweep is
//! one campaign point (see `mha_bench::campaign`); a meta row carries the
//! mean relative error for the title.

use mha_apps::report::{fmt_bytes, Table};
use mha_bench::campaign::{run_campaign, CampaignConfig, CampaignPoint, Row};
use mha_model::{calibrate, mean_rel_error, validate_intra};
use mha_simnet::{size_sweep, ClusterSpec};

fn main() {
    mha_bench::apply_check_flag();
    let spec = ClusterSpec::thor();
    let spec2 = spec.clone();
    let points = vec![CampaignPoint::custom("validate_intra", move |_seed| {
        let params = calibrate(&spec2).map_err(|e| format!("{e:?}"))?;
        let sizes = size_sweep(256 * 1024, 16 << 20);
        let points = validate_intra(&spec2, &params, 4, &sizes).map_err(|e| format!("{e:?}"))?;
        let mut rows = vec![Row::new("meta", vec![mean_rel_error(&points) * 100.0])];
        for p in &points {
            rows.push(Row::new(
                fmt_bytes(p.msg),
                vec![p.actual_us, p.predicted_us, p.rel_error() * 100.0],
            ));
        }
        Ok(rows)
    })];
    let report = run_campaign(&points, &CampaignConfig::from_env()).unwrap();
    let rows = report.rows_for(0);
    let mut t = Table::new(
        format!(
            "Figure 9: MHA-intra model validation, 4 processes \
             (mean rel. error {:.1}%)",
            rows[0].values[0]
        ),
        "msg_bytes",
        vec![
            "actual_us".into(),
            "predicted_us".into(),
            "rel_err_pct".into(),
        ],
    );
    for row in &rows[1..] {
        t.push(row.label.clone(), row.values.clone());
    }
    mha_bench::emit(&t, "fig09_model_intra");
    let sim = mha_simnet::Simulator::new(spec.clone()).unwrap();
    let built = mha_collectives::mha::build_mha_intra(
        mha_sched::ProcGrid::single_node(4),
        4 << 20,
        mha_collectives::mha::Offload::Auto,
        &spec,
    )
    .unwrap();
    mha_bench::emit_run_summary(&sim, &built.sched, "fig09_model_intra");
}
