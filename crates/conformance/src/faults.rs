//! The fault-case oracle: random rail-fault schedules must not break the
//! collective.
//!
//! For each randomly drawn fault case (`H`-rail cluster, `k` rails down at
//! t = 0, a hierarchical Allgather built failure-aware against the
//! surviving set) the oracle checks:
//!
//! * **correctness** — the degraded schedule still passes validation, the
//!   race check, and MPI_Allgather semantics on both executors (the
//!   fault-oblivious build is checked alongside it as a control);
//! * **invariants** — simulating the degraded schedule under the fault
//!   timeline passes the full [`mha_sched::InvariantProbe`] audit,
//!   including the "no flow progresses on a down rail" probe;
//! * **degradation envelope** — for bandwidth-regime messages, the
//!   simulated latency with `k` failed rails is within a multiplicative
//!   envelope of the α–β model evaluated at `H − k` rails.

use mha_bench::campaign::{run_campaign, simulator_for, CampaignConfig, CampaignPoint, Row};
use mha_collectives::mha::{
    build_mha_inter, build_mha_inter_degraded, InterAlgo, MhaInterConfig, Offload,
};
use mha_exec::Mode;
use mha_model::{mha_inter_latency, ModelParams, Phase2};
use mha_sched::{InvariantProbe, ProcGrid};
use mha_simnet::{ClusterSpec, FaultSpec};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Structural + executor checks shared by both builds of a fault case.
fn verify_built(
    built: &mha_collectives::Built,
    spec: &ClusterSpec,
    threads: usize,
) -> Result<(), String> {
    mha_sched::validate(&built.sched, Some(spec.rails)).map_err(|e| format!("validate: {e}"))?;
    let races = mha_sched::check_races(&built.sched);
    if !races.is_empty() {
        return Err(format!("{} races, first on {}", races.len(), races[0].buf));
    }
    mha_exec::verify_allgather(
        &built.sched,
        &built.send,
        &built.recv,
        built.msg,
        Mode::Single,
    )
    .map_err(|e| format!("verify single: {e:?}"))?;
    mha_exec::verify_allgather(
        &built.sched,
        &built.send,
        &built.recv,
        built.msg,
        Mode::Threaded(threads),
    )
    .map_err(|e| format!("verify threaded: {e:?}"))?;
    Ok(())
}

/// Fault-oracle knobs (all overridable from the environment).
#[derive(Debug, Clone)]
pub struct FaultOracleConfig {
    /// Number of random fault cases (`MHA_FAULT_CASES`).
    pub cases: usize,
    /// RNG seed (`MHA_FAULT_SEED`); the sweep is deterministic given it.
    pub seed: u64,
    /// Degraded latency must lie within `[model / envelope,
    /// model · envelope]` of the α–β prediction at `H − k` rails
    /// (`MHA_FAULT_ENVELOPE`).
    pub envelope: f64,
    /// Worker threads for the thread-pool verification runs.
    pub threads: usize,
}

impl Default for FaultOracleConfig {
    fn default() -> Self {
        FaultOracleConfig {
            cases: 100,
            seed: 0xFA17,
            envelope: 2.0,
            threads: 4,
        }
    }
}

impl FaultOracleConfig {
    /// The default configuration with `MHA_FAULT_CASES`, `MHA_FAULT_SEED`
    /// and `MHA_FAULT_ENVELOPE` applied on top.
    pub fn from_env() -> Self {
        let mut cfg = FaultOracleConfig::default();
        if let Some(v) = env_parse("MHA_FAULT_CASES") {
            cfg.cases = v;
        }
        if let Some(v) = env_parse("MHA_FAULT_SEED") {
            cfg.seed = v;
        }
        if let Some(v) = env_parse("MHA_FAULT_ENVELOPE") {
            cfg.envelope = v;
        }
        cfg
    }
}

fn env_parse<T: std::str::FromStr>(key: &str) -> Option<T> {
    std::env::var(key).ok()?.parse().ok()
}

/// One randomly drawn fault case.
#[derive(Debug, Clone)]
pub struct FaultCase {
    /// Rails per node of the cluster under test.
    pub rails: u8,
    /// Rails taken down at t = 0 (distinct, strictly fewer than `rails`).
    pub down: Vec<u8>,
    /// Process layout.
    pub grid: ProcGrid,
    /// Per-rank contribution size in bytes.
    pub msg: usize,
    /// Phase-2 exchange pattern.
    pub inter: InterAlgo,
    /// Intra-node offload policy.
    pub offload: Offload,
}

impl FaultCase {
    /// A short, greppable description for disagreement reports.
    pub fn describe(&self) -> String {
        format!(
            "{:?} {}x{} msg={} rails={} down={:?}",
            self.inter,
            self.grid.nodes(),
            self.grid.ppn(),
            self.msg,
            self.rails,
            self.down
        )
    }
}

fn pick<T: Copy>(rng: &mut StdRng, xs: &[T]) -> T {
    xs[rng.gen_range(0..xs.len())]
}

/// Draws one fault case. Node counts stay powers of two so both phase-2
/// patterns are always buildable.
pub fn sample_fault_case(rng: &mut StdRng) -> FaultCase {
    let rails = pick(rng, &[2u8, 4, 8]);
    let k = rng.gen_range(0..rails) as usize;
    let mut all: Vec<u8> = (0..rails).collect();
    for i in 0..k {
        let j = rng.gen_range(i..all.len());
        all.swap(i, j);
    }
    let mut down = all[..k].to_vec();
    down.sort_unstable();
    FaultCase {
        rails,
        down,
        grid: ProcGrid::new(pick(rng, &[2u32, 4]), pick(rng, &[1u32, 2, 4])),
        msg: pick(rng, &[1024usize, 16 * 1024, 64 * 1024]),
        inter: if rng.gen_range(0..2u32) == 0 {
            InterAlgo::Ring
        } else {
            InterAlgo::RecursiveDoubling
        },
        offload: if rng.gen_range(0..2u32) == 0 {
            Offload::Auto
        } else {
            Offload::None
        },
    }
}

/// The outcome of a fault-oracle sweep.
#[derive(Debug)]
pub struct FaultOracleReport {
    /// Fault cases checked.
    pub cases: usize,
    /// Cases whose degradation envelope was checked (bandwidth-regime
    /// messages only).
    pub envelope_checked: usize,
    /// Human-readable description of every disagreement (empty = pass).
    pub disagreements: Vec<String>,
}

impl FaultOracleReport {
    /// Whether the sweep found no disagreement.
    pub fn is_clean(&self) -> bool {
        self.disagreements.is_empty()
    }
}

/// Runs the fault-oracle sweep: `cfg.cases` random fault cases.
///
/// Cases are pre-sampled sequentially from the seeded RNG, fanned across
/// the campaign worker pool (`MHA_CAMPAIGN_WORKERS`), and reassembled in
/// case order — the report is independent of pool width.
pub fn run_fault_oracle(cfg: &FaultOracleConfig) -> FaultOracleReport {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let cases: Vec<FaultCase> = (0..cfg.cases)
        .map(|_| sample_fault_case(&mut rng))
        .collect();

    let envelope = cfg.envelope;
    let threads = cfg.threads;
    let points: Vec<CampaignPoint> = cases
        .into_iter()
        .map(|case| {
            let label = case.describe();
            CampaignPoint::custom(label, move |_seed| {
                Ok(vec![match check_fault_case(&case, envelope, threads) {
                    Ok(checked) => Row::new("ok", vec![if checked { 1.0 } else { 0.0 }]),
                    Err(e) => Row::note(case.describe(), e),
                }])
            })
        })
        .collect();
    let mut pool = CampaignConfig::from_env();
    pool.reps = 1;
    let report = run_campaign(&points, &pool).expect("fault-oracle pool failed");

    let mut disagreements = Vec::new();
    let mut envelope_checked = 0;
    for pr in &report.results {
        for row in &pr.rows {
            match &row.note {
                Some(e) => {
                    disagreements.push(format!("fault case {} [{}]: {e}", pr.point, row.label))
                }
                None => envelope_checked += row.values[0] as usize,
            }
        }
    }
    FaultOracleReport {
        cases: cfg.cases,
        envelope_checked,
        disagreements,
    }
}

/// Checks one fault case; returns whether the degradation envelope was
/// evaluated (it is skipped in the startup-dominated small-message regime,
/// where an α–β bandwidth model is not the right yardstick).
pub fn check_fault_case(case: &FaultCase, envelope: f64, threads: usize) -> Result<bool, String> {
    let spec = ClusterSpec::thor_with_rails(case.rails);
    let cfg = MhaInterConfig {
        inter: case.inter,
        offload: case.offload,
        overlap: true,
    };

    // Control: the fault-oblivious build stays healthy.
    let base = build_mha_inter(case.grid, case.msg, cfg, &spec)
        .map_err(|e| format!("baseline build failed: {e:?}"))?;
    verify_built(&base, &spec, threads).map_err(|e| format!("baseline {e}"))?;

    // The failure-aware build must be just as correct.
    let deg = build_mha_inter_degraded(case.grid, case.msg, cfg, &spec, &case.down)
        .map_err(|e| format!("degraded build failed: {e:?}"))?;
    verify_built(&deg, &spec, threads).map_err(|e| format!("degraded {e}"))?;

    // Simulate the degraded schedule under the fault timeline with the
    // full invariant audit (includes the down-rail progress probe). An
    // empty down-set must not pay for a fault interpreter: `simulator_for`
    // takes the engine's fault-free branch when the timeline is empty.
    let mut faults = FaultSpec::new(mha_simnet::DEFAULT_RETRY_TIMEOUT);
    for &r in &case.down {
        faults = faults.with_event(mha_simnet::FaultEvent {
            time: 0.0,
            rail: r,
            node: None,
            kind: mha_simnet::FaultKind::Down,
        });
    }
    let sim = simulator_for(&spec, Some(&faults)).map_err(|e| format!("simulator: {e}"))?;
    let mut audit = InvariantProbe::new();
    let result = sim
        .run_probed(&deg.sched, &mut audit)
        .map_err(|e| format!("faulted simnet: {e}"))?;
    if !audit.is_clean() {
        return Err(format!(
            "invariant violations under faults: {}",
            audit.violations()[0]
        ));
    }

    // Degradation envelope: latency with k failed rails vs the α–β model
    // at H − k rails. Only meaningful once bandwidth dominates startup.
    if case.msg < spec.stripe_threshold {
        return Ok(false);
    }
    let survivors = case.rails - case.down.len() as u8;
    let p = ModelParams::from_spec(&ClusterSpec::thor_with_rails(survivors));
    let phase2 = match case.inter {
        InterAlgo::Ring => Phase2::Ring,
        InterAlgo::RecursiveDoubling => Phase2::RecursiveDoubling,
    };
    let predicted = mha_inter_latency(&p, case.grid.nodes(), case.grid.ppn(), case.msg, phase2);
    let ratio = result.makespan / predicted;
    if !(1.0 / envelope..=envelope).contains(&ratio) {
        return Err(format!(
            "degraded latency {:.3e}s vs model at {survivors} rails {predicted:.3e}s \
             (ratio {ratio:.2} outside ±{envelope}x)",
            result.makespan
        ));
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_single_fault_case_passes_every_layer() {
        let case = FaultCase {
            rails: 4,
            down: vec![1],
            grid: ProcGrid::new(4, 2),
            msg: 64 * 1024,
            inter: InterAlgo::Ring,
            offload: Offload::Auto,
        };
        assert!(check_fault_case(&case, 2.0, 4).unwrap());
    }

    #[test]
    fn sampled_cases_always_leave_a_survivor() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let c = sample_fault_case(&mut rng);
            assert!(c.down.len() < c.rails as usize);
            let mut d = c.down.clone();
            d.dedup();
            assert_eq!(d.len(), c.down.len(), "duplicate down rails");
        }
    }

    #[test]
    fn a_zero_fault_case_stays_on_the_fault_free_path() {
        // An empty down-set is a valid draw; it must check out clean and
        // its simulator must take the fault-free branch (no interpreter).
        let spec = ClusterSpec::thor_with_rails(4);
        let empty = FaultSpec::new(mha_simnet::DEFAULT_RETRY_TIMEOUT);
        assert!(!simulator_for(&spec, Some(&empty)).unwrap().faults_active());
        let case = FaultCase {
            rails: 4,
            down: vec![],
            grid: ProcGrid::new(2, 2),
            msg: 64 * 1024,
            inter: InterAlgo::Ring,
            offload: Offload::Auto,
        };
        assert!(check_fault_case(&case, 2.0, 4).unwrap());
    }

    #[test]
    fn config_defaults_meet_the_acceptance_bar() {
        let cfg = FaultOracleConfig::default();
        assert!(cfg.cases >= 100);
        assert_eq!(cfg.envelope, 2.0);
    }
}
