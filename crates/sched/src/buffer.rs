//! Buffer declarations.
//!
//! A schedule moves bytes between *declared* buffers. A buffer is either
//! private to one rank (its send/recv buffers) or shared by all ranks on one
//! node (the shared-memory segment used by the two-level designs for the
//! overlapped distribution phase).

use crate::grid::ProcGrid;
use crate::ids::{BufId, NodeId, RankId};

/// Where a buffer lives and who may touch it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BufKind {
    /// Owned by a single rank; only that rank's CPU may copy into/out of it,
    /// but CMA transfers and RDMA may read/write it remotely (that is their
    /// entire point).
    Private(RankId),
    /// A POSIX-shm style segment mapped by every rank of one node.
    NodeShared(NodeId),
}

/// A declared buffer: identity, placement, and extent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BufferDecl {
    /// Dense identifier, assigned by the builder.
    pub id: BufId,
    /// Placement and access class.
    pub kind: BufKind,
    /// Extent in bytes.
    pub len: usize,
    /// For node-shared buffers on NUMA clusters: the socket whose memory
    /// the segment's pages live on (first-touch). `None` = interleaved /
    /// NUMA-agnostic; the simulator then charges no cross-socket cost for
    /// accessing it. Ignored for private buffers.
    pub home_socket: Option<u32>,
    /// Human-readable label used in traces and DOT dumps.
    pub label: String,
}

impl BufferDecl {
    /// The node on which the buffer physically resides.
    pub fn node(&self, grid: &ProcGrid) -> NodeId {
        match self.kind {
            BufKind::Private(rank) => grid.node_of(rank),
            BufKind::NodeShared(node) => node,
        }
    }

    /// Whether `rank` may address this buffer with a local (CPU) operation.
    ///
    /// Private buffers are addressable only by their owner; node-shared
    /// buffers by any rank of that node.
    pub fn local_to(&self, grid: &ProcGrid, rank: RankId) -> bool {
        match self.kind {
            BufKind::Private(owner) => owner == rank,
            BufKind::NodeShared(node) => grid.node_of(rank) == node,
        }
    }

    /// Whether `rank` may be an endpoint of a transfer touching this buffer.
    ///
    /// Transfers (CMA or rail) address remote private memory by design, so
    /// the endpoint only needs to be on *some* rank; node-shared buffers
    /// require the endpoint rank to be on the owning node (shm segments are
    /// not exported over the network in the paper's designs).
    pub fn transfer_endpoint_ok(&self, grid: &ProcGrid, rank: RankId) -> bool {
        match self.kind {
            BufKind::Private(owner) => owner == rank,
            BufKind::NodeShared(node) => grid.node_of(rank) == node,
        }
    }
}

/// A byte range within a declared buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Loc {
    /// Target buffer.
    pub buf: BufId,
    /// Byte offset from the start of the buffer.
    pub offset: usize,
}

impl Loc {
    /// Convenience constructor.
    #[inline]
    pub fn new(buf: BufId, offset: usize) -> Self {
        Loc { buf, offset }
    }

    /// The same buffer at `offset + delta`.
    #[inline]
    pub fn at(self, delta: usize) -> Self {
        Loc {
            buf: self.buf,
            offset: self.offset + delta,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decl(kind: BufKind) -> BufferDecl {
        BufferDecl {
            id: BufId(0),
            kind,
            len: 64,
            home_socket: None,
            label: "t".into(),
        }
    }

    #[test]
    fn private_buffer_local_only_to_owner() {
        let g = ProcGrid::new(2, 2);
        let b = decl(BufKind::Private(RankId(1)));
        assert!(b.local_to(&g, RankId(1)));
        assert!(!b.local_to(&g, RankId(0)));
        assert!(!b.local_to(&g, RankId(2)));
        assert_eq!(b.node(&g), NodeId(0));
    }

    #[test]
    fn shared_buffer_local_to_whole_node() {
        let g = ProcGrid::new(2, 2);
        let b = decl(BufKind::NodeShared(NodeId(1)));
        assert!(b.local_to(&g, RankId(2)));
        assert!(b.local_to(&g, RankId(3)));
        assert!(!b.local_to(&g, RankId(0)));
        assert_eq!(b.node(&g), NodeId(1));
    }

    #[test]
    fn loc_at_advances_offset() {
        let l = Loc::new(BufId(3), 16);
        assert_eq!(l.at(8), Loc::new(BufId(3), 24));
    }
}
