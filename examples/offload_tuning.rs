//! The Figure 5 experiment: how much work should each rank hand to the
//! HCAs? Sweeps the offload size on the simulator and compares the
//! empirical optimum with Eq. 1's analytic prediction.
//!
//! ```sh
//! cargo run --release --example offload_tuning
//! ```

use mha::collectives::mha::{optimal_offload, tune_offload};
use mha::simnet::ClusterSpec;

fn main() {
    let spec = ClusterSpec::thor();
    for (l, msg) in [(4u32, 4usize << 20), (8, 1 << 20), (16, 1 << 20)] {
        let (best, curve) = tune_offload(&spec, l, msg).unwrap();
        let eq1 = optimal_offload(&spec, l, msg);
        println!("L = {l}, M = {} KB:", msg / 1024);
        for pt in &curve {
            let marker = if pt.d == best {
                "  <== tuned optimum"
            } else {
                ""
            };
            let eq1_marker = if pt.d == eq1 { "  (Eq. 1)" } else { "" };
            println!(
                "  d = {:>2}: {:>10.1} us{}{}",
                pt.d, pt.latency_us, marker, eq1_marker
            );
        }
        println!();
    }
    println!(
        "Eq. 1 assumes an uncontended CPU path; under memory congestion the\n\
         empirical optimum offloads more — exactly why the paper pairs the\n\
         analytic model with the measurement-driven tuner (Section 3.1)."
    );
}
