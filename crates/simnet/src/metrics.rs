//! Aggregate analysis of simulation traces: time attribution by op kind,
//! phase breakdowns by step tag, and overlap reports — the machinery behind
//! the Figure 6/7 arguments and the utilization sections of EXPERIMENTS.md.

use crate::trace::{intersection_length, union_length, Trace};

/// Wall-clock attribution of a trace (seconds of *busy* time per category;
/// categories overlap, so they do not sum to the makespan).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KindBreakdown {
    /// Union of intervals where any rail transfer is in flight.
    pub network_busy: f64,
    /// Union of intervals where any CMA transfer is running.
    pub cma_busy: f64,
    /// Union of intervals where any CPU copy is running.
    pub copy_busy: f64,
    /// Union of intervals where any reduction is running.
    pub reduce_busy: f64,
    /// Union of intervals where any pure compute is running.
    pub compute_busy: f64,
    /// Time where network and (copy ∪ CMA ∪ reduce) overlap — the paper's
    /// "network transfers and intra-node memory copies can be overlapped".
    pub net_mem_overlap: f64,
    /// Total simulated time.
    pub makespan: f64,
}

impl KindBreakdown {
    /// Fraction of network-busy time hidden under memory work (0 when the
    /// network is never busy).
    pub fn overlap_fraction(&self) -> f64 {
        if self.network_busy > 0.0 {
            self.net_mem_overlap / self.network_busy
        } else {
            0.0
        }
    }
}

/// Computes the [`KindBreakdown`] of a trace.
pub fn kind_breakdown(trace: &Trace) -> KindBreakdown {
    let net = trace.intervals_where(|_, m| m.kind == "rail" || m.kind == "rails");
    let cma = trace.intervals_where(|_, m| m.kind == "cma");
    let copy = trace.intervals_where(|_, m| m.kind == "copy");
    let reduce = trace.intervals_where(|_, m| m.kind == "reduce");
    let compute = trace.intervals_where(|_, m| m.kind == "compute");
    let mut mem = cma.clone();
    mem.extend_from_slice(&copy);
    mem.extend_from_slice(&reduce);
    KindBreakdown {
        network_busy: union_length(&net),
        cma_busy: union_length(&cma),
        copy_busy: union_length(&copy),
        reduce_busy: union_length(&reduce),
        compute_busy: union_length(&compute),
        net_mem_overlap: intersection_length(&net, &mem),
        makespan: trace.makespan(),
    }
}

/// Busy time of each step-tag range `[lo, hi)` — e.g. the MHA-inter
/// convention (phase 1 `0..1000`, phase 2 `1000..2000`, phase 3
/// `2000..4000`) — as `(range, union busy seconds)`.
pub fn phase_breakdown(trace: &Trace, ranges: &[(u32, u32)]) -> Vec<((u32, u32), f64)> {
    ranges
        .iter()
        .map(|&(lo, hi)| {
            let intervals = trace.intervals_where(|_, m| m.step.is_some_and(|s| s >= lo && s < hi));
            ((lo, hi), union_length(&intervals))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{SimConfig, Simulator};
    use crate::topology::ClusterSpec;
    use mha_sched::{Channel, Loc, ProcGrid, RankId, ScheduleBuilder};

    fn traced(build: impl FnOnce(&mut ScheduleBuilder)) -> Trace {
        let grid = ProcGrid::new(2, 2);
        let mut b = ScheduleBuilder::new(grid, "t");
        build(&mut b);
        let sch = b.finish().freeze();
        let sim = Simulator::new(ClusterSpec::thor()).unwrap();
        sim.run_with(&sch, SimConfig { trace: true })
            .unwrap()
            .trace
            .unwrap()
    }

    #[test]
    fn breakdown_attributes_kinds() {
        let trace = traced(|b| {
            let len = 1 << 20;
            let s = b.private_buf(RankId(0), len, "s");
            let d = b.private_buf(RankId(2), len, "d");
            let e = b.private_buf(RankId(2), len, "e");
            let t = b.transfer(
                RankId(0),
                RankId(2),
                Loc::new(s, 0),
                Loc::new(d, 0),
                len,
                Channel::AllRails,
                &[],
                0,
            );
            b.copy(RankId(2), Loc::new(d, 0), Loc::new(e, 0), len, &[t], 1);
        });
        let kb = kind_breakdown(&trace);
        assert!(kb.network_busy > 0.0);
        assert!(kb.copy_busy > 0.0);
        assert_eq!(kb.cma_busy, 0.0);
        // Sequential dependency → no overlap.
        assert_eq!(kb.net_mem_overlap, 0.0);
        assert_eq!(kb.overlap_fraction(), 0.0);
        assert!(kb.makespan >= kb.network_busy + kb.copy_busy - 1e-12);
    }

    #[test]
    fn independent_ops_overlap() {
        let trace = traced(|b| {
            let len = 1 << 20;
            let s = b.private_buf(RankId(0), len, "s");
            let d = b.private_buf(RankId(2), len, "d");
            let p = b.private_buf(RankId(1), len, "p");
            let q = b.private_buf(RankId(1), len, "q");
            b.transfer(
                RankId(0),
                RankId(2),
                Loc::new(s, 0),
                Loc::new(d, 0),
                len,
                Channel::AllRails,
                &[],
                0,
            );
            b.copy(RankId(1), Loc::new(p, 0), Loc::new(q, 0), len, &[], 0);
        });
        let kb = kind_breakdown(&trace);
        assert!(kb.net_mem_overlap > 0.0);
        assert!(kb.overlap_fraction() > 0.5);
    }

    #[test]
    fn phase_breakdown_splits_by_step_tags() {
        let trace = traced(|b| {
            let len = 256 * 1024;
            let p = b.private_buf(RankId(0), len, "p");
            let q = b.private_buf(RankId(0), len, "q");
            let r = b.private_buf(RankId(0), len, "r");
            let c1 = b.copy(RankId(0), Loc::new(p, 0), Loc::new(q, 0), len, &[], 5);
            b.copy(RankId(0), Loc::new(q, 0), Loc::new(r, 0), len, &[c1], 1500);
        });
        let phases = phase_breakdown(&trace, &[(0, 1000), (1000, 2000), (2000, 3000)]);
        assert!(phases[0].1 > 0.0);
        assert!(phases[1].1 > 0.0);
        assert_eq!(phases[2].1, 0.0);
    }
}
