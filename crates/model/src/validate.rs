//! Model validation against the simulator (Section 4.3, Figures 9–10).
//!
//! The paper validates its equations against Thor measurements; our
//! "measurement" is the discrete-event simulator, so these helpers sweep a
//! message-size range, price each point both ways, and report
//! predicted-vs-actual pairs plus summary error statistics.

use mha_collectives::mha::{build_mha_inter, build_mha_intra, InterAlgo, MhaInterConfig, Offload};
use mha_sched::ProcGrid;
use mha_simnet::{ClusterSpec, SimError, Simulator};

use crate::inter::{mha_inter_latency, Phase2};
use crate::intra::mha_intra_latency_auto;
use crate::params::ModelParams;

/// One predicted-vs-actual point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValidationPoint {
    /// Per-rank message size (bytes).
    pub msg: usize,
    /// Model prediction (µs).
    pub predicted_us: f64,
    /// Simulated "measurement" (µs).
    pub actual_us: f64,
}

impl ValidationPoint {
    /// |predicted − actual| / actual.
    pub fn rel_error(&self) -> f64 {
        (self.predicted_us - self.actual_us).abs() / self.actual_us.max(1e-12)
    }
}

/// A validation failure.
#[derive(Debug)]
pub enum ModelError {
    /// The collective failed to build.
    Build(mha_collectives::BuildError),
    /// Simulation failed.
    Sim(SimError),
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::Build(e) => write!(f, "build failed: {e}"),
            ModelError::Sim(e) => write!(f, "simulation failed: {e}"),
        }
    }
}

impl std::error::Error for ModelError {}

impl From<mha_collectives::BuildError> for ModelError {
    fn from(e: mha_collectives::BuildError) -> Self {
        ModelError::Build(e)
    }
}

impl From<SimError> for ModelError {
    fn from(e: SimError) -> Self {
        ModelError::Sim(e)
    }
}

/// Figure 9: MHA-intra predicted vs simulated latency for `l` processes
/// across `sizes`.
pub fn validate_intra(
    spec: &ClusterSpec,
    p: &ModelParams,
    l: u32,
    sizes: &[usize],
) -> Result<Vec<ValidationPoint>, ModelError> {
    let sim = Simulator::new(spec.clone())?;
    let grid = ProcGrid::single_node(l);
    let mut out = Vec::with_capacity(sizes.len());
    for &m in sizes {
        let built = build_mha_intra(grid, m, Offload::Auto, spec)?;
        let actual_us = sim.run(&built.sched)?.latency_us();
        let predicted_us = mha_intra_latency_auto(p, l, m) * 1e6;
        out.push(ValidationPoint {
            msg: m,
            predicted_us,
            actual_us,
        });
    }
    Ok(out)
}

/// Figure 10: MHA-inter (tuned Ring/RD, matching the paper's procedure)
/// predicted vs simulated latency for `n × l` across `sizes`.
pub fn validate_inter(
    spec: &ClusterSpec,
    p: &ModelParams,
    n: u32,
    l: u32,
    sizes: &[usize],
) -> Result<Vec<ValidationPoint>, ModelError> {
    let sim = Simulator::new(spec.clone())?;
    let grid = ProcGrid::new(n, l);
    let mut out = Vec::with_capacity(sizes.len());
    for &m in sizes {
        let mut best_actual = f64::INFINITY;
        let mut best_pred = f64::INFINITY;
        let mut algos = vec![InterAlgo::Ring];
        if n.is_power_of_two() {
            algos.push(InterAlgo::RecursiveDoubling);
        }
        for inter in algos {
            let cfg = MhaInterConfig {
                inter,
                offload: Offload::Auto,
                overlap: true,
            };
            let built = build_mha_inter(grid, m, cfg, spec)?;
            let actual = sim.run(&built.sched)?.latency_us();
            let phase2 = match inter {
                InterAlgo::Ring => Phase2::Ring,
                InterAlgo::RecursiveDoubling => Phase2::RecursiveDoubling,
            };
            let pred = mha_inter_latency(p, n, l, m, phase2) * 1e6;
            if actual < best_actual {
                best_actual = actual;
            }
            if pred < best_pred {
                best_pred = pred;
            }
        }
        out.push(ValidationPoint {
            msg: m,
            predicted_us: best_pred,
            actual_us: best_actual,
        });
    }
    Ok(out)
}

/// Mean relative error across points.
pub fn mean_rel_error(points: &[ValidationPoint]) -> f64 {
    if points.is_empty() {
        return 0.0;
    }
    points.iter().map(ValidationPoint::rel_error).sum::<f64>() / points.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibrate::calibrate;

    fn sizes() -> Vec<usize> {
        mha_simnet::size_sweep(256 * 1024, 16 << 20)
    }

    #[test]
    fn intra_model_tracks_simulator_fig9() {
        // Figure 9's setting: 4 processes, 256 KB – 16 MB.
        let spec = ClusterSpec::thor();
        let p = calibrate(&spec).unwrap();
        let points = validate_intra(&spec, &p, 4, &sizes()).unwrap();
        let err = mean_rel_error(&points);
        assert!(err < 0.25, "mean relative error {err}: {points:?}");
        // Both curves rise monotonically.
        for w in points.windows(2) {
            assert!(w[1].actual_us > w[0].actual_us);
            assert!(w[1].predicted_us > w[0].predicted_us);
        }
    }

    #[test]
    fn inter_model_tracks_simulator_fig10() {
        // Figure 10's setting (scaled down for test time): 8 nodes.
        let spec = ClusterSpec::thor();
        let p = calibrate(&spec).unwrap();
        let sizes = mha_simnet::size_sweep(1024, 1 << 20);
        let points = validate_inter(&spec, &p, 8, 8, &sizes).unwrap();
        let err = mean_rel_error(&points);
        assert!(err < 0.5, "mean relative error {err}: {points:?}");
    }

    #[test]
    fn rel_error_is_symmetric_enough() {
        let pt = ValidationPoint {
            msg: 1,
            predicted_us: 110.0,
            actual_us: 100.0,
        };
        assert!((pt.rel_error() - 0.1).abs() < 1e-12);
        assert_eq!(mean_rel_error(&[]), 0.0);
    }
}
