//! MHA-inter: the hierarchical multi-HCA aware Allgather (Section 3.2).
//!
//! Three phases, with phases 2 and 3 overlapped:
//!
//! 1. **Node-level aggregation** — MHA-intra (Section 3.1) within each node,
//!    writing straight into each rank's receive buffer at the node's global
//!    offset, so every rank already holds its node's full `L · M` block.
//! 2. **Inter-leader exchange** — one leader per node moves `L · M`-byte
//!    node blocks over the rails (striped across all HCAs), using Recursive
//!    Doubling (`log N` steps, doubling sizes) or Ring (`N − 1` steps,
//!    constant size).
//! 3. **Node-level distribution** — as soon as a chunk lands, the leader
//!    copies it into the node's shared-memory segment (the paper's
//!    chunk-counter, expressed here as a dependency edge) and the members
//!    copy it out, *while the NIC fetches the next chunk* (Figure 6).
//!
//! Ring's constant chunk size keeps the copy pipeline full; RD's doubling
//! chunks starve it (Figure 7) — both fall out of the dependency structure
//! here, nothing is hard-coded.

use mha_sched::{BufId, Channel, Loc, OpId, OpKind, ProcGrid, RailSet, RankId};
use mha_simnet::ClusterSpec;

use crate::chunks::chunk_bounds;
use crate::ctx::{BuildError, Built, Ctx};
use crate::mha::intra::intra_into;
use crate::mha::offload::{resolve_offload, Offload};

/// The inter-leader exchange algorithm for phase 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterAlgo {
    /// `N − 1` constant-size steps; best overlap (Section 3.2).
    Ring,
    /// `log₂ N` doubling steps; wins for small messages, loses overlap at
    /// scale. Requires a power-of-two node count.
    RecursiveDoubling,
}

/// Configuration of the hierarchical design.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MhaInterConfig {
    /// Phase-2 algorithm.
    pub inter: InterAlgo,
    /// Phase-1 offload policy.
    pub offload: Offload,
    /// Whether phase 3 overlaps phase 2 (the paper's design) or strictly
    /// follows it (the Kandalla-style baseline behaviour).
    pub overlap: bool,
}

impl Default for MhaInterConfig {
    fn default() -> Self {
        MhaInterConfig {
            inter: InterAlgo::Ring,
            offload: Offload::Auto,
            overlap: true,
        }
    }
}

/// A chunk that arrived at a node leader during phase 2.
struct Arrival {
    /// First global rank-block of the chunk.
    start_block: u32,
    /// Number of rank-blocks.
    nblocks: u32,
    /// The transfer that delivered it.
    op: OpId,
}

/// Builds the hierarchical MHA Allgather.
///
/// # Errors
///
/// [`BuildError::RequiresPowerOfTwo`] if `cfg.inter` is Recursive Doubling
/// and the node count is not a power of two.
pub fn build_mha_inter(
    grid: ProcGrid,
    msg: usize,
    cfg: MhaInterConfig,
    spec: &ClusterSpec,
) -> Result<Built, BuildError> {
    let d = resolve_offload(cfg.offload, spec, grid.ppn(), msg);
    let name = format!(
        "mha-inter-{}(d={d}{})",
        match cfg.inter {
            InterAlgo::Ring => "ring",
            InterAlgo::RecursiveDoubling => "rd",
        },
        if cfg.overlap { "" } else { ",seq" }
    );
    let mut ctx = Ctx::new(grid, msg, name);
    emit_mha_inter(&mut ctx, cfg, spec)?;
    Ok(ctx.finish())
}

/// Failure-aware variant of [`build_mha_inter`]: phase-2 leader exchanges
/// resolve `Channel::AllRails` against the surviving-rail set, re-tiling
/// each node-block stripe over the `H − k` rails not listed in
/// `down_rails`. With `down_rails` empty the schedule is byte-identical to
/// [`build_mha_inter`].
///
/// # Errors
///
/// Same as [`build_mha_inter`].
pub fn build_mha_inter_degraded(
    grid: ProcGrid,
    msg: usize,
    cfg: MhaInterConfig,
    spec: &ClusterSpec,
    down_rails: &[u8],
) -> Result<Built, BuildError> {
    let rails = RailSet::excluding(spec.rails, down_rails);
    let d = resolve_offload(cfg.offload, spec, grid.ppn(), msg);
    let name = format!(
        "mha-inter-{}(d={d}{},rails={}/{})",
        match cfg.inter {
            InterAlgo::Ring => "ring",
            InterAlgo::RecursiveDoubling => "rd",
        },
        if cfg.overlap { "" } else { ",seq" },
        rails.len(),
        rails.total(),
    );
    let mut ctx = Ctx::new(grid, msg, name);
    emit_mha_inter_with_rails(&mut ctx, cfg, spec, &rails)?;
    Ok(ctx.finish())
}

/// One phase-2 leader-to-leader chunk transfer, resolved against the
/// surviving-rail set. With a full set this *is* the fault-oblivious
/// `AllRails` transfer. Degraded, the chunk is re-tiled into per-rail
/// stripes over the survivors (small chunks are pinned round-robin to one
/// survivor, mirroring the pt2pt layer's policy below the stripe
/// threshold), joined by a zero-flop marker at the receiving leader so
/// downstream deps see one op.
#[allow(clippy::too_many_arguments)]
fn leader_chunk_transfer(
    ctx: &mut Ctx,
    rails: &RailSet,
    spec: &ClusterSpec,
    rr: &mut usize,
    lsrc: RankId,
    ldst: RankId,
    src: Loc,
    dst: Loc,
    len: usize,
    deps: &[OpId],
    step: u32,
) -> OpId {
    if rails.is_full() {
        return ctx
            .b
            .transfer(lsrc, ldst, src, dst, len, Channel::AllRails, deps, step);
    }
    let k = rails.len();
    if !spec.stripes(len) {
        let h = rails.rails()[*rr % k];
        *rr += 1;
        return ctx
            .b
            .transfer(lsrc, ldst, src, dst, len, Channel::Rail(h), deps, step);
    }
    let mut parts: Vec<OpId> = Vec::with_capacity(k);
    for (i, &h) in rails.rails().iter().enumerate() {
        let (lo, hi) = chunk_bounds(len, k, i);
        if hi == lo {
            continue;
        }
        let t = ctx.b.transfer(
            lsrc,
            ldst,
            Loc::new(src.buf, src.offset + lo),
            Loc::new(dst.buf, dst.offset + lo),
            hi - lo,
            Channel::Rail(h),
            deps,
            step,
        );
        parts.push(t);
    }
    if parts.len() == 1 {
        return parts[0];
    }
    ctx.b.push(
        OpKind::Compute {
            actor: ldst,
            flops: 0,
        },
        &parts,
        step,
        "stripe-join",
    )
}

/// Emits the hierarchical exchange into an existing context (also used as
/// the Allgather phase of the MHA-accelerated Ring-Allreduce).
pub(crate) fn emit_mha_inter(
    ctx: &mut Ctx,
    cfg: MhaInterConfig,
    spec: &ClusterSpec,
) -> Result<(), BuildError> {
    emit_mha_inter_with_rails(ctx, cfg, spec, &RailSet::full(spec.rails))
}

/// [`emit_mha_inter`] generalized over the surviving-rail set.
pub(crate) fn emit_mha_inter_with_rails(
    ctx: &mut Ctx,
    cfg: MhaInterConfig,
    spec: &ClusterSpec,
    rails: &RailSet,
) -> Result<(), BuildError> {
    let grid = ctx.grid();
    let msg = ctx.msg;
    let n = grid.nodes();
    let l = grid.ppn();
    if cfg.inter == InterAlgo::RecursiveDoubling && !n.is_power_of_two() {
        return Err(BuildError::RequiresPowerOfTwo {
            what: "nodes",
            got: n,
        });
    }
    if ctx.is_degenerate() {
        ctx.emit_degenerate();
        return Ok(());
    }
    let d = resolve_offload(cfg.offload, spec, l, msg);

    // ---- Phase 1: node-level aggregation -------------------------------
    let mut leader_fill: Vec<Vec<OpId>> = Vec::with_capacity(n as usize);
    for node in grid.node_ids() {
        let fills = intra_into(ctx, node, d, 0);
        leader_fill.push(fills.into_iter().next().expect("ppn >= 1"));
    }
    if n == 1 {
        return Ok(());
    }

    // ---- Phase 2: inter-leader exchange ---------------------------------
    let node_block = l as usize * msg;
    let leader = |nd: u32| grid.leader_of(mha_sched::NodeId(nd));
    // Chunk location inside any rank's receive buffer / the shm segment.
    let chunk_loc = |buf: BufId, start_block: u32| Loc::new(buf, start_block as usize * msg);

    let mut arrivals: Vec<Vec<Arrival>> = (0..n).map(|_| Vec::new()).collect();
    let mut rr = 0usize; // round-robin cursor for degraded small chunks
    match cfg.inter {
        InterAlgo::Ring => {
            // avail[nd]: ops guaranteeing the block node nd sends this step.
            let mut avail: Vec<Vec<OpId>> = leader_fill.clone();
            let mut prev_recv: Vec<Option<OpId>> = vec![None; n as usize];
            for s in 0..n - 1 {
                let mut next_avail = Vec::with_capacity(n as usize);
                let mut next_recv = Vec::with_capacity(n as usize);
                for nd in 0..n {
                    let sender = (nd + n - 1) % n;
                    let block_node = (sender + n - s) % n;
                    let mut deps = avail[sender as usize].clone();
                    deps.extend(prev_recv[nd as usize]);
                    let (lsrc, ldst) = (leader(sender), leader(nd));
                    let t = leader_chunk_transfer(
                        ctx,
                        rails,
                        spec,
                        &mut rr,
                        lsrc,
                        ldst,
                        chunk_loc(ctx.recv[lsrc.index()], block_node * l),
                        chunk_loc(ctx.recv[ldst.index()], block_node * l),
                        node_block,
                        &deps,
                        1000 + s,
                    );
                    arrivals[nd as usize].push(Arrival {
                        start_block: block_node * l,
                        nblocks: l,
                        op: t,
                    });
                    next_avail.push(vec![t]);
                    next_recv.push(Some(t));
                }
                avail = next_avail;
                prev_recv = next_recv;
            }
        }
        InterAlgo::RecursiveDoubling => {
            // net_cur[nd]: deps representing "node nd's region is current".
            let mut net_cur: Vec<Vec<OpId>> = leader_fill.clone();
            let steps = n.trailing_zeros();
            for k in 0..steps {
                let dist = 1u32 << k;
                let mut next_cur = net_cur.clone();
                for nd in 0..n {
                    let partner = nd ^ dist;
                    let pbase = partner & !(dist - 1);
                    let mut deps = net_cur[partner as usize].clone();
                    deps.extend(net_cur[nd as usize].iter().copied());
                    let (lsrc, ldst) = (leader(partner), leader(nd));
                    let t = leader_chunk_transfer(
                        ctx,
                        rails,
                        spec,
                        &mut rr,
                        lsrc,
                        ldst,
                        chunk_loc(ctx.recv[lsrc.index()], pbase * l),
                        chunk_loc(ctx.recv[ldst.index()], pbase * l),
                        dist as usize * node_block,
                        &deps,
                        1000 + k,
                    );
                    arrivals[nd as usize].push(Arrival {
                        start_block: pbase * l,
                        nblocks: dist * l,
                        op: t,
                    });
                    let mut cur = net_cur[nd as usize].clone();
                    cur.push(t);
                    next_cur[nd as usize] = vec![t];
                    let _ = cur;
                }
                net_cur = next_cur;
            }
        }
    }

    // ---- Phase 3: node-level distribution (overlapped with phase 2) -----
    for node in grid.node_ids() {
        let nd = node.0 as usize;
        // The leader first-touches the segment, so on a NUMA node its pages
        // land on the leader's socket — ranks of other sockets then pay the
        // cross-socket interconnect on their copy-outs. (This NUMA
        // blindness is exactly what the future-work 3-level design fixes.)
        let shm = if let Some(numa) = spec.numa.as_ref() {
            let home = numa.socket_of(&grid, grid.leader_of(node));
            ctx.b.shared_buf_homed(
                node,
                home,
                grid.nranks() as usize * msg,
                format!("shm/{node}"),
            )
        } else {
            ctx.b
                .shared_buf(node, grid.nranks() as usize * msg, format!("shm/{node}"))
        };
        let lead = grid.leader_of(node);
        let last_recv = arrivals[nd].last().expect("n >= 2 has arrivals").op;
        for (idx, arr) in arrivals[nd].iter().enumerate() {
            let gate = if cfg.overlap { arr.op } else { last_recv };
            let len = arr.nblocks as usize * msg;
            let src = chunk_loc(ctx.recv[lead.index()], arr.start_block);
            let dst = chunk_loc(shm, arr.start_block);
            let deps = ctx.cur.deps_with(lead, &[gate]);
            let cin = ctx.b.copy(lead, src, dst, len, &deps, 2000 + idx as u32);
            ctx.cur.advance(lead, cin);
            for lr in 1..l {
                let m = grid.rank_on(node, lr);
                let deps = ctx.cur.deps_with(m, &[cin]);
                let cout = ctx.b.copy(
                    m,
                    chunk_loc(shm, arr.start_block),
                    chunk_loc(ctx.recv[m.index()], arr.start_block),
                    len,
                    &deps,
                    3000 + idx as u32,
                );
                ctx.cur.advance(m, cout);
            }
        }
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::testutil::assert_allgather_correct;
    use mha_simnet::Simulator;

    fn thor() -> ClusterSpec {
        ClusterSpec::thor()
    }

    fn cfg(inter: InterAlgo, overlap: bool) -> MhaInterConfig {
        MhaInterConfig {
            inter,
            offload: Offload::Auto,
            overlap,
        }
    }

    #[test]
    fn ring_variant_is_correct() {
        for (nodes, ppn) in [(2, 2), (3, 2), (4, 4), (5, 3), (8, 2), (2, 1)] {
            let built = build_mha_inter(
                ProcGrid::new(nodes, ppn),
                16,
                cfg(InterAlgo::Ring, true),
                &thor(),
            )
            .unwrap();
            assert_allgather_correct(&built);
        }
    }

    #[test]
    fn rd_variant_is_correct_for_power_of_two_nodes() {
        for (nodes, ppn) in [(2, 2), (4, 3), (8, 2), (4, 1)] {
            let built = build_mha_inter(
                ProcGrid::new(nodes, ppn),
                16,
                cfg(InterAlgo::RecursiveDoubling, true),
                &thor(),
            )
            .unwrap();
            assert_allgather_correct(&built);
        }
    }

    #[test]
    fn sequential_variants_are_also_correct() {
        for inter in [InterAlgo::Ring, InterAlgo::RecursiveDoubling] {
            let built =
                build_mha_inter(ProcGrid::new(4, 2), 16, cfg(inter, false), &thor()).unwrap();
            assert_allgather_correct(&built);
        }
    }

    #[test]
    fn rd_rejects_non_power_of_two_nodes() {
        let err = build_mha_inter(
            ProcGrid::new(3, 2),
            8,
            cfg(InterAlgo::RecursiveDoubling, true),
            &thor(),
        )
        .unwrap_err();
        assert!(matches!(err, BuildError::RequiresPowerOfTwo { .. }));
    }

    #[test]
    fn single_node_degenerates_to_mha_intra() {
        let built =
            build_mha_inter(ProcGrid::new(1, 4), 16, cfg(InterAlgo::Ring, true), &thor()).unwrap();
        assert_allgather_correct(&built);
        assert_eq!(built.sched.stats().steps, 4); // intra steps only
    }

    #[test]
    fn overlap_beats_sequential_phases() {
        // The core claim of Section 3.2 / Figure 6.
        let sim = Simulator::new(thor()).unwrap();
        let grid = ProcGrid::new(8, 8);
        let msg = 256 * 1024;
        let over = build_mha_inter(grid, msg, cfg(InterAlgo::Ring, true), &thor()).unwrap();
        let seq = build_mha_inter(grid, msg, cfg(InterAlgo::Ring, false), &thor()).unwrap();
        let t_over = sim.run(&over.sched).unwrap().latency_us();
        let t_seq = sim.run(&seq.sched).unwrap().latency_us();
        assert!(
            t_over < t_seq * 0.95,
            "overlap {t_over} should beat sequential {t_seq}"
        );
    }

    #[test]
    fn ring_beats_rd_for_large_messages_at_scale() {
        // Figure 8's large-message regime.
        let sim = Simulator::new(thor()).unwrap();
        let grid = ProcGrid::new(16, 8);
        let msg = 128 * 1024;
        let ring = build_mha_inter(grid, msg, cfg(InterAlgo::Ring, true), &thor()).unwrap();
        let rd =
            build_mha_inter(grid, msg, cfg(InterAlgo::RecursiveDoubling, true), &thor()).unwrap();
        let t_ring = sim.run(&ring.sched).unwrap().latency_us();
        let t_rd = sim.run(&rd.sched).unwrap().latency_us();
        assert!(t_ring < t_rd, "ring {t_ring} vs rd {t_rd}");
    }

    #[test]
    fn rd_beats_ring_for_small_messages() {
        // Figure 8's small-message regime: log N startup terms win.
        let sim = Simulator::new(thor()).unwrap();
        let grid = ProcGrid::new(16, 8);
        let msg = 16;
        let ring = build_mha_inter(grid, msg, cfg(InterAlgo::Ring, true), &thor()).unwrap();
        let rd =
            build_mha_inter(grid, msg, cfg(InterAlgo::RecursiveDoubling, true), &thor()).unwrap();
        let t_ring = sim.run(&ring.sched).unwrap().latency_us();
        let t_rd = sim.run(&rd.sched).unwrap().latency_us();
        assert!(t_rd < t_ring, "rd {t_rd} vs ring {t_ring}");
    }

    #[test]
    fn phase2_traffic_is_rail_only() {
        // The hierarchy's point: inter-node traffic never rides CMA.
        let built = build_mha_inter(
            ProcGrid::new(4, 4),
            64,
            MhaInterConfig {
                offload: Offload::None,
                ..Default::default()
            },
            &thor(),
        )
        .unwrap();
        for op in built.sched.ops() {
            if let mha_sched::OpKind::Transfer {
                src_rank,
                dst_rank,
                channel,
                ..
            } = &op.kind
            {
                if !built.sched.grid().same_node(*src_rank, *dst_rank) {
                    assert!(matches!(channel, Channel::AllRails));
                    // Only leaders speak across nodes.
                    assert!(built.sched.grid().is_leader(*src_rank));
                    assert!(built.sched.grid().is_leader(*dst_rank));
                }
            }
        }
    }

    #[test]
    fn degraded_with_no_failures_is_byte_identical() {
        // Only the schedule name differs; the op stream must not.
        for inter in [InterAlgo::Ring, InterAlgo::RecursiveDoubling] {
            for msg in [16usize, 64 * 1024] {
                let grid = ProcGrid::new(4, 2);
                let base = build_mha_inter(grid, msg, cfg(inter, true), &thor()).unwrap();
                let deg =
                    build_mha_inter_degraded(grid, msg, cfg(inter, true), &thor(), &[]).unwrap();
                assert_eq!(
                    format!("{:?}", base.sched.ops()),
                    format!("{:?}", deg.sched.ops()),
                    "{inter:?}/{msg}"
                );
            }
        }
    }

    #[test]
    fn degraded_build_avoids_down_rails_and_stays_correct() {
        for inter in [InterAlgo::Ring, InterAlgo::RecursiveDoubling] {
            for msg in [16usize, 64 * 1024] {
                let built = build_mha_inter_degraded(
                    ProcGrid::new(4, 2),
                    msg,
                    MhaInterConfig {
                        inter,
                        offload: Offload::None,
                        overlap: true,
                    },
                    &thor(),
                    &[0],
                )
                .unwrap();
                assert_allgather_correct(&built);
                for op in built.sched.ops() {
                    if let mha_sched::OpKind::Transfer {
                        src_rank,
                        dst_rank,
                        channel,
                        ..
                    } = &op.kind
                    {
                        if !built.sched.grid().same_node(*src_rank, *dst_rank) {
                            assert!(
                                matches!(channel, Channel::Rail(h) if *h != 0),
                                "inter-node op {:?} rides {channel:?} with rail 0 down",
                                op.id
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn degraded_with_every_rail_down_falls_back_to_the_full_set() {
        // The builder has to route the traffic somewhere; total outage is
        // the simulator's stall/retry problem, not the scheduler's.
        let grid = ProcGrid::new(2, 2);
        let base = build_mha_inter(grid, 32, cfg(InterAlgo::Ring, true), &thor()).unwrap();
        let deg = build_mha_inter_degraded(grid, 32, cfg(InterAlgo::Ring, true), &thor(), &[0, 1])
            .unwrap();
        assert_eq!(
            format!("{:?}", base.sched.ops()),
            format!("{:?}", deg.sched.ops())
        );
    }
}
