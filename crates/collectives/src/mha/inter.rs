//! MHA-inter: the hierarchical multi-HCA aware Allgather (Section 3.2).
//!
//! Three phases, with phases 2 and 3 overlapped:
//!
//! 1. **Node-level aggregation** — MHA-intra (Section 3.1) within each node,
//!    writing straight into each rank's receive buffer at the node's global
//!    offset, so every rank already holds its node's full `L · M` block.
//! 2. **Inter-leader exchange** — one leader per node moves `L · M`-byte
//!    node blocks over the rails (striped across all HCAs), using Recursive
//!    Doubling (`log N` steps, doubling sizes) or Ring (`N − 1` steps,
//!    constant size).
//! 3. **Node-level distribution** — as soon as a chunk lands, the leader
//!    copies it into the node's shared-memory segment (the paper's
//!    chunk-counter, expressed here as a dependency edge) and the members
//!    copy it out, *while the NIC fetches the next chunk* (Figure 6).
//!
//! Ring's constant chunk size keeps the copy pipeline full; RD's doubling
//! chunks starve it (Figure 7) — both fall out of the dependency structure
//! here, nothing is hard-coded.

use mha_sched::{ProcGrid, RailSet, Topology};
use mha_simnet::ClusterSpec;

use crate::compose::{emit_plan, ComposePlan};
use crate::ctx::{BuildError, Built, Ctx};
use crate::mha::offload::{resolve_offload, Offload};

/// The inter-leader exchange algorithm for phase 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterAlgo {
    /// `N − 1` constant-size steps; best overlap (Section 3.2).
    Ring,
    /// `log₂ N` doubling steps; wins for small messages, loses overlap at
    /// scale. Requires a power-of-two node count.
    RecursiveDoubling,
}

/// Configuration of the hierarchical design.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MhaInterConfig {
    /// Phase-2 algorithm.
    pub inter: InterAlgo,
    /// Phase-1 offload policy.
    pub offload: Offload,
    /// Whether phase 3 overlaps phase 2 (the paper's design) or strictly
    /// follows it (the Kandalla-style baseline behaviour).
    pub overlap: bool,
}

impl Default for MhaInterConfig {
    fn default() -> Self {
        MhaInterConfig {
            inter: InterAlgo::Ring,
            offload: Offload::Auto,
            overlap: true,
        }
    }
}

/// Builds the hierarchical MHA Allgather. Thin wrapper over the unified
/// [`crate::build`] dispatcher (schedules are bit-identical either way).
///
/// # Errors
///
/// [`BuildError::RequiresPowerOfTwo`] if `cfg.inter` is Recursive Doubling
/// and the node count is not a power of two.
pub fn build_mha_inter(
    grid: ProcGrid,
    msg: usize,
    cfg: MhaInterConfig,
    spec: &ClusterSpec,
) -> Result<Built, BuildError> {
    crate::config::build(&crate::config::AlgoConfig::mha_inter(cfg), grid, msg, spec)
}

/// Failure-aware variant of [`build_mha_inter`]: phase-2 leader exchanges
/// resolve `Channel::AllRails` against the surviving-rail set, re-tiling
/// each node-block stripe over the `H − k` rails not listed in
/// `down_rails`. With `down_rails` empty the schedule is byte-identical to
/// [`build_mha_inter`].
///
/// # Errors
///
/// Same as [`build_mha_inter`].
pub fn build_mha_inter_degraded(
    grid: ProcGrid,
    msg: usize,
    cfg: MhaInterConfig,
    spec: &ClusterSpec,
    down_rails: &[u8],
) -> Result<Built, BuildError> {
    let rails = RailSet::excluding(spec.rails, down_rails);
    let d = resolve_offload(cfg.offload, spec, grid.ppn(), msg);
    let name = format!(
        "mha-inter-{}(d={d}{},rails={}/{})",
        match cfg.inter {
            InterAlgo::Ring => "ring",
            InterAlgo::RecursiveDoubling => "rd",
        },
        if cfg.overlap { "" } else { ",seq" },
        rails.len(),
        rails.total(),
    );
    let mut ctx = Ctx::new(grid, msg, name);
    emit_mha_inter_with_rails(&mut ctx, cfg, spec, &rails)?;
    Ok(ctx.finish())
}

/// Emits the hierarchical exchange into an existing context (also used as
/// the Allgather phase of the MHA-accelerated Ring-Allreduce).
pub(crate) fn emit_mha_inter(
    ctx: &mut Ctx,
    cfg: MhaInterConfig,
    spec: &ClusterSpec,
) -> Result<(), BuildError> {
    emit_mha_inter_with_rails(ctx, cfg, spec, &RailSet::full(spec.rails))
}

/// [`emit_mha_inter`] generalized over the surviving-rail set: the 2-level
/// `[Exchange, Gather]` instantiation of the generic composer.
pub(crate) fn emit_mha_inter_with_rails(
    ctx: &mut Ctx,
    cfg: MhaInterConfig,
    spec: &ClusterSpec,
    rails: &RailSet,
) -> Result<(), BuildError> {
    let grid = ctx.grid();
    let topo = Topology::two_level(grid.nodes(), grid.ppn());
    emit_plan(
        ctx,
        &topo,
        &ComposePlan::mha_inter(cfg),
        Some(spec),
        Some(rails),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::testutil::assert_allgather_correct;
    use mha_sched::Channel;
    use mha_simnet::Simulator;

    fn thor() -> ClusterSpec {
        ClusterSpec::thor()
    }

    fn cfg(inter: InterAlgo, overlap: bool) -> MhaInterConfig {
        MhaInterConfig {
            inter,
            offload: Offload::Auto,
            overlap,
        }
    }

    #[test]
    fn ring_variant_is_correct() {
        for (nodes, ppn) in [(2, 2), (3, 2), (4, 4), (5, 3), (8, 2), (2, 1)] {
            let built = build_mha_inter(
                ProcGrid::new(nodes, ppn),
                16,
                cfg(InterAlgo::Ring, true),
                &thor(),
            )
            .unwrap();
            assert_allgather_correct(&built);
        }
    }

    #[test]
    fn rd_variant_is_correct_for_power_of_two_nodes() {
        for (nodes, ppn) in [(2, 2), (4, 3), (8, 2), (4, 1)] {
            let built = build_mha_inter(
                ProcGrid::new(nodes, ppn),
                16,
                cfg(InterAlgo::RecursiveDoubling, true),
                &thor(),
            )
            .unwrap();
            assert_allgather_correct(&built);
        }
    }

    #[test]
    fn sequential_variants_are_also_correct() {
        for inter in [InterAlgo::Ring, InterAlgo::RecursiveDoubling] {
            let built =
                build_mha_inter(ProcGrid::new(4, 2), 16, cfg(inter, false), &thor()).unwrap();
            assert_allgather_correct(&built);
        }
    }

    #[test]
    fn rd_rejects_non_power_of_two_nodes() {
        let err = build_mha_inter(
            ProcGrid::new(3, 2),
            8,
            cfg(InterAlgo::RecursiveDoubling, true),
            &thor(),
        )
        .unwrap_err();
        assert!(matches!(err, BuildError::RequiresPowerOfTwo { .. }));
    }

    #[test]
    fn single_node_degenerates_to_mha_intra() {
        let built =
            build_mha_inter(ProcGrid::new(1, 4), 16, cfg(InterAlgo::Ring, true), &thor()).unwrap();
        assert_allgather_correct(&built);
        assert_eq!(built.sched.stats().steps, 4); // intra steps only
    }

    #[test]
    fn overlap_beats_sequential_phases() {
        // The core claim of Section 3.2 / Figure 6.
        let sim = Simulator::new(thor()).unwrap();
        let grid = ProcGrid::new(8, 8);
        let msg = 256 * 1024;
        let over = build_mha_inter(grid, msg, cfg(InterAlgo::Ring, true), &thor()).unwrap();
        let seq = build_mha_inter(grid, msg, cfg(InterAlgo::Ring, false), &thor()).unwrap();
        let t_over = sim.run(&over.sched).unwrap().latency_us();
        let t_seq = sim.run(&seq.sched).unwrap().latency_us();
        assert!(
            t_over < t_seq * 0.95,
            "overlap {t_over} should beat sequential {t_seq}"
        );
    }

    #[test]
    fn ring_beats_rd_for_large_messages_at_scale() {
        // Figure 8's large-message regime.
        let sim = Simulator::new(thor()).unwrap();
        let grid = ProcGrid::new(16, 8);
        let msg = 128 * 1024;
        let ring = build_mha_inter(grid, msg, cfg(InterAlgo::Ring, true), &thor()).unwrap();
        let rd =
            build_mha_inter(grid, msg, cfg(InterAlgo::RecursiveDoubling, true), &thor()).unwrap();
        let t_ring = sim.run(&ring.sched).unwrap().latency_us();
        let t_rd = sim.run(&rd.sched).unwrap().latency_us();
        assert!(t_ring < t_rd, "ring {t_ring} vs rd {t_rd}");
    }

    #[test]
    fn rd_beats_ring_for_small_messages() {
        // Figure 8's small-message regime: log N startup terms win.
        let sim = Simulator::new(thor()).unwrap();
        let grid = ProcGrid::new(16, 8);
        let msg = 16;
        let ring = build_mha_inter(grid, msg, cfg(InterAlgo::Ring, true), &thor()).unwrap();
        let rd =
            build_mha_inter(grid, msg, cfg(InterAlgo::RecursiveDoubling, true), &thor()).unwrap();
        let t_ring = sim.run(&ring.sched).unwrap().latency_us();
        let t_rd = sim.run(&rd.sched).unwrap().latency_us();
        assert!(t_rd < t_ring, "rd {t_rd} vs ring {t_ring}");
    }

    #[test]
    fn phase2_traffic_is_rail_only() {
        // The hierarchy's point: inter-node traffic never rides CMA.
        let built = build_mha_inter(
            ProcGrid::new(4, 4),
            64,
            MhaInterConfig {
                offload: Offload::None,
                ..Default::default()
            },
            &thor(),
        )
        .unwrap();
        for op in built.sched.ops() {
            if let mha_sched::OpKind::Transfer {
                src_rank,
                dst_rank,
                channel,
                ..
            } = &op.kind
            {
                if !built.sched.grid().same_node(*src_rank, *dst_rank) {
                    assert!(matches!(channel, Channel::AllRails));
                    // Only leaders speak across nodes.
                    assert!(built.sched.grid().is_leader(*src_rank));
                    assert!(built.sched.grid().is_leader(*dst_rank));
                }
            }
        }
    }

    #[test]
    fn degraded_with_no_failures_is_byte_identical() {
        // Only the schedule name differs; the op stream must not.
        for inter in [InterAlgo::Ring, InterAlgo::RecursiveDoubling] {
            for msg in [16usize, 64 * 1024] {
                let grid = ProcGrid::new(4, 2);
                let base = build_mha_inter(grid, msg, cfg(inter, true), &thor()).unwrap();
                let deg =
                    build_mha_inter_degraded(grid, msg, cfg(inter, true), &thor(), &[]).unwrap();
                assert_eq!(
                    format!("{:?}", base.sched.ops()),
                    format!("{:?}", deg.sched.ops()),
                    "{inter:?}/{msg}"
                );
            }
        }
    }

    #[test]
    fn degraded_build_avoids_down_rails_and_stays_correct() {
        for inter in [InterAlgo::Ring, InterAlgo::RecursiveDoubling] {
            for msg in [16usize, 64 * 1024] {
                let built = build_mha_inter_degraded(
                    ProcGrid::new(4, 2),
                    msg,
                    MhaInterConfig {
                        inter,
                        offload: Offload::None,
                        overlap: true,
                    },
                    &thor(),
                    &[0],
                )
                .unwrap();
                assert_allgather_correct(&built);
                for op in built.sched.ops() {
                    if let mha_sched::OpKind::Transfer {
                        src_rank,
                        dst_rank,
                        channel,
                        ..
                    } = &op.kind
                    {
                        if !built.sched.grid().same_node(*src_rank, *dst_rank) {
                            assert!(
                                matches!(channel, Channel::Rail(h) if *h != 0),
                                "inter-node op {:?} rides {channel:?} with rail 0 down",
                                op.id
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn degraded_with_every_rail_down_falls_back_to_the_full_set() {
        // The builder has to route the traffic somewhere; total outage is
        // the simulator's stall/retry problem, not the scheduler's.
        let grid = ProcGrid::new(2, 2);
        let base = build_mha_inter(grid, 32, cfg(InterAlgo::Ring, true), &thor()).unwrap();
        let deg = build_mha_inter_degraded(grid, 32, cfg(InterAlgo::Ring, true), &thor(), &[0, 1])
            .unwrap();
        assert_eq!(
            format!("{:?}", base.sched.ops()),
            format!("{:?}", deg.sched.ops())
        );
    }
}
