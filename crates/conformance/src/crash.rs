//! The crash oracle: seeded worker kills must recover byte-identically.
//!
//! Each crash case draws a collective configuration from one of the four
//! oracle families (flat / two-level / MHA / Hier) plus a kill seed, then
//! checks the same crash on both sides of the modeled-vs-executed pairing:
//!
//! * **executed (correctness)** — an unfailed [`mha_exec::run_single`] run
//!   is the reference; a deterministic single-executor kill at a seeded op
//!   index and a seeded [`KillPlan`] on the worker pool must both, after
//!   [`mha_exec::resume_single`] / [`mha_exec::resume_threaded`] from the
//!   completion journal, leave **every** buffer byte-identical to the
//!   reference — non-idempotent Reduce ops make any double-execution or
//!   skipped op visible;
//! * **modeled (latency)** — the same scenario as a node crash in `simnet`
//!   ([`FaultSpec::node_crash`]): the run must stay invariant-clean and
//!   the makespan must absorb the full recovery penalty.

use mha_bench::campaign::{run_campaign, CampaignConfig, CampaignPoint, Row};
use mha_exec::{
    resume_single, resume_threaded, run_single, run_single_killed, run_threaded_killed,
    BufferStore, CompletionJournal, ExecError, KillPlan,
};
use mha_sched::{FrozenSchedule, InvariantProbe};
use mha_simnet::{ClusterSpec, FaultSpec, Simulator};
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::cases::{sample_case, Case, Family};

/// Crash-oracle knobs (all overridable from the environment).
#[derive(Debug, Clone)]
pub struct CrashOracleConfig {
    /// Number of random crash cases (`MHA_CRASH_CASES`).
    pub cases: usize,
    /// RNG seed (`MHA_CRASH_SEED`); the sweep is deterministic given it.
    pub seed: u64,
    /// Worker threads for the kill-harness runs (`MHA_CRASH_THREADS`).
    pub threads: usize,
}

impl Default for CrashOracleConfig {
    fn default() -> Self {
        CrashOracleConfig {
            cases: 100,
            seed: 0xDEAD,
            threads: 4,
        }
    }
}

impl CrashOracleConfig {
    /// The default configuration with `MHA_CRASH_CASES`, `MHA_CRASH_SEED`
    /// and `MHA_CRASH_THREADS` applied on top.
    pub fn from_env() -> Self {
        let mut cfg = CrashOracleConfig::default();
        if let Some(v) = env_parse("MHA_CRASH_CASES") {
            cfg.cases = v;
        }
        if let Some(v) = env_parse("MHA_CRASH_SEED") {
            cfg.seed = v;
        }
        if let Some(v) = env_parse("MHA_CRASH_THREADS") {
            cfg.threads = v;
        }
        cfg
    }
}

fn env_parse<T: std::str::FromStr>(key: &str) -> Option<T> {
    std::env::var(key).ok()?.parse().ok()
}

/// One randomly drawn crash case: a collective configuration plus the seed
/// driving both kill points (single-executor stop index, threaded
/// [`KillPlan`], crashed simnet node).
#[derive(Debug, Clone)]
pub struct CrashCase {
    /// The collective under test.
    pub case: Case,
    /// Seed for every kill decision in the case.
    pub kill_seed: u64,
}

impl CrashCase {
    /// A short, greppable description for disagreement reports.
    pub fn describe(&self) -> String {
        format!("{} kill_seed={:#x}", self.case.describe(), self.kill_seed)
    }
}

/// Draws one crash case from `family`.
pub fn sample_crash_case(rng: &mut StdRng, family: Family) -> CrashCase {
    CrashCase {
        case: sample_case(rng, family),
        kill_seed: rng.gen_range(0..u64::MAX),
    }
}

/// All buffer contents, in buffer-id order — the byte-exact recovery
/// oracle compares entire stores, not just the receive buffers, so a
/// resumed run may not even scribble differently on scratch space.
fn snapshot(sch: &FrozenSchedule, store: &BufferStore) -> Vec<Vec<u8>> {
    sch.buffers().iter().map(|b| store.read_all(b.id)).collect()
}

/// A store with every rank's send buffer filled with its distinct pattern.
fn seeded_store(sch: &FrozenSchedule, built: &mha_collectives::Built) -> BufferStore {
    let store = BufferStore::new(sch);
    for (rank, &buf) in built.send.iter().enumerate() {
        store.fill(buf, 0, &mha_exec::rank_pattern(rank, built.msg));
    }
    store
}

/// Checks the executed side of one crash case: kill at a seeded point on
/// both executors, resume from the journal, require every buffer
/// byte-identical to an unfailed run.
pub fn check_crash_case(crash: &CrashCase, threads: usize) -> Result<(), String> {
    let spec = ClusterSpec::thor();
    let built = crash
        .case
        .build(&spec)
        .map_err(|e| format!("build failed: {e:?}"))?;
    let sch = &built.sched;
    let n = sch.n_ops();
    if n == 0 {
        return Ok(());
    }

    // Reference: the unfailed run.
    let ref_store = seeded_store(sch, &built);
    run_single(sch, &ref_store).map_err(|e| format!("reference run: {e}"))?;
    let want = snapshot(sch, &ref_store);

    // Deterministic kill on the sequential executor: exactly `k` ops
    // retire, then the run dies; resume must finish the suffix.
    let k = (crash.kill_seed % n as u64) as usize;
    let store = seeded_store(sch, &built);
    let journal = CompletionJournal::for_schedule(sch);
    match run_single_killed(sch, &store, &journal, k) {
        Err(ExecError::Killed { done, total }) => {
            if done != k || total != n {
                return Err(format!("single kill at {k}/{n} reported {done}/{total}"));
            }
        }
        Ok(()) => return Err(format!("single kill at {k} of {n} never fired")),
        Err(e) => return Err(format!("single kill: {e}")),
    }
    if journal.len() != k {
        return Err(format!(
            "journal holds {} ops, kill was at {k}",
            journal.len()
        ));
    }
    resume_single(sch, &store, &journal).map_err(|e| format!("single resume: {e}"))?;
    if !journal.is_complete() {
        return Err(format!(
            "single resume left {} of {n} ops unjournaled",
            n - journal.len()
        ));
    }
    if snapshot(sch, &store) != want {
        return Err("single-executor recovery diverged from the unfailed run".into());
    }

    // Seeded worker-thread murder on the pool. A late kill point may let
    // the pool finish first (Ok) — the bytes must match either way.
    let plan = KillPlan::seeded(crash.kill_seed, n, threads);
    let store = seeded_store(sch, &built);
    let journal = CompletionJournal::for_schedule(sch);
    match run_threaded_killed(sch, &store, threads, &journal, &plan) {
        Err(ExecError::Killed { done, total }) => {
            if done != journal.len() || total != n || done >= total {
                return Err(format!(
                    "threaded kill reported {done}/{total}, journal {}",
                    journal.len()
                ));
            }
            resume_threaded(sch, &store, threads, &journal)
                .map_err(|e| format!("threaded resume: {e}"))?;
        }
        Ok(()) => {}
        Err(e) => return Err(format!("threaded kill: {e}")),
    }
    if !journal.is_complete() {
        return Err(format!(
            "threaded recovery left {} of {n} ops unjournaled",
            n - journal.len()
        ));
    }
    if snapshot(sch, &store) != want {
        return Err(format!(
            "threaded recovery diverged from the unfailed run (plan {plan:?})"
        ));
    }
    Ok(())
}

/// Checks the modeled side: the same crash as a simnet node outage. The
/// seeded node goes down at t = 0 and restarts after twice the fault-free
/// makespan, so a correct engine cannot finish before the restart; the run
/// must also stay invariant-clean.
pub fn check_modeled_crash(crash: &CrashCase) -> Result<(), String> {
    let spec = ClusterSpec::thor();
    let built = crash
        .case
        .build(&spec)
        .map_err(|e| format!("build failed: {e:?}"))?;
    if built.sched.n_ops() == 0 {
        return Ok(());
    }
    let m0 = Simulator::new(spec.clone())
        .map_err(|e| format!("simulator: {e}"))?
        .run(&built.sched)
        .map_err(|e| format!("fault-free sim: {e}"))?
        .makespan;
    let node = (crash.kill_seed % u64::from(crash.case.grid.nodes())) as u32;
    let recovery = 2.0 * m0;
    let sim = Simulator::with_faults(spec, FaultSpec::node_crash(node, 0.0, recovery))
        .map_err(|e| format!("simulator: {e}"))?;
    let mut audit = InvariantProbe::new();
    let m = sim
        .run_probed(&built.sched, &mut audit)
        .map_err(|e| format!("crashed sim: {e}"))?
        .makespan;
    if !audit.is_clean() {
        return Err(format!(
            "invariant violations under node crash: {}",
            audit.violations()[0]
        ));
    }
    if m < recovery {
        return Err(format!(
            "node {node} was down until {recovery:.3e}s but the run finished at {m:.3e}s"
        ));
    }
    Ok(())
}

/// The outcome of a crash-oracle sweep.
#[derive(Debug)]
pub struct CrashOracleReport {
    /// Crash cases checked.
    pub cases: usize,
    /// Human-readable description of every disagreement (empty = pass).
    pub disagreements: Vec<String>,
}

impl CrashOracleReport {
    /// Whether every kill schedule recovered byte-identically.
    pub fn is_clean(&self) -> bool {
        self.disagreements.is_empty()
    }
}

/// Runs the crash-oracle sweep: `cfg.cases` seeded kill schedules,
/// round-robin across the four families.
///
/// Cases are pre-sampled sequentially from the seeded RNG, fanned across
/// the campaign worker pool (`MHA_CAMPAIGN_WORKERS`), and reassembled in
/// case order — the report is independent of pool width.
pub fn run_crash_oracle(cfg: &CrashOracleConfig) -> CrashOracleReport {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let cases: Vec<CrashCase> = (0..cfg.cases)
        .map(|i| sample_crash_case(&mut rng, Family::ALL[i % Family::ALL.len()]))
        .collect();

    let threads = cfg.threads;
    let points: Vec<CampaignPoint> = cases
        .into_iter()
        .map(|crash| {
            let label = crash.describe();
            CampaignPoint::custom(label, move |_seed| {
                let checked =
                    check_crash_case(&crash, threads).and_then(|()| check_modeled_crash(&crash));
                Ok(vec![match checked {
                    Ok(()) => Row::new("ok", vec![1.0]),
                    Err(e) => Row::note(crash.describe(), e),
                }])
            })
        })
        .collect();
    let mut pool = CampaignConfig::from_env();
    pool.reps = 1;
    let report = run_campaign(&points, &pool).expect("crash-oracle pool failed");

    let mut disagreements = Vec::new();
    for pr in &report.results {
        for row in &pr.rows {
            if let Some(e) = &row.note {
                disagreements.push(format!("crash case {} [{}]: {e}", pr.point, row.label));
            }
        }
    }
    CrashOracleReport {
        cases: cfg.cases,
        disagreements,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_single_crash_case_recovers_on_both_sides() {
        let mut rng = StdRng::seed_from_u64(1);
        let crash = sample_crash_case(&mut rng, Family::Mha);
        check_crash_case(&crash, 4).unwrap();
        check_modeled_crash(&crash).unwrap();
    }

    #[test]
    fn every_family_survives_a_crash() {
        let mut rng = StdRng::seed_from_u64(11);
        for family in Family::ALL {
            let crash = sample_crash_case(&mut rng, family);
            check_crash_case(&crash, 3).unwrap_or_else(|e| panic!("{}: {e}", crash.describe()));
        }
    }

    #[test]
    fn config_defaults_meet_the_acceptance_bar() {
        let cfg = CrashOracleConfig::default();
        assert!(cfg.cases >= 100);
        assert_eq!(cfg.seed, 0xDEAD);
    }
}
