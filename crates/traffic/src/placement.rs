//! Placement policies: which cluster nodes a job occupies.
//!
//! Placements are **whole-node**: a job asking for `w` nodes receives `w`
//! distinct cluster nodes (at the cluster's ppn) and shares them with any
//! other job placed on overlapping nodes — sharing is how cross-job
//! contention arises, so policies never queue or reject, they only choose
//! *where*. The mechanical half (rank/buffer remapping) is
//! [`mha_sched::relocate_onto`].

use mha_sched::{Fingerprinter, ProcGrid};
use rand::{rngs::StdRng, Rng};

/// How a job's node subset is chosen from the shared cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementPolicy {
    /// The first `w` nodes: `0, 1, …, w-1`. Maximizes overlap between
    /// concurrent jobs (worst-case interference).
    Packed,
    /// Evenly spread: node `i` of the job lands on cluster node
    /// `⌊i · C / w⌋`. Jobs of equal width collide; different widths
    /// interleave.
    Striped,
    /// A uniform random `w`-subset (sorted), drawn from the traffic
    /// spec's seeded generator — distinct jobs usually overlap partially.
    Random,
}

impl PlacementPolicy {
    /// Stable lower-case token (CSV labels, CLI flags).
    pub fn token(self) -> &'static str {
        match self {
            PlacementPolicy::Packed => "packed",
            PlacementPolicy::Striped => "striped",
            PlacementPolicy::Random => "random",
        }
    }
}

/// Chooses `want` distinct nodes of a `cluster_nodes`-node cluster under
/// `policy`. `rng` is consumed **only** by [`PlacementPolicy::Random`] —
/// deterministic policies leave the arrival stream's generator untouched.
///
/// # Panics
///
/// Panics if `want` is zero or exceeds `cluster_nodes`.
pub fn place(policy: PlacementPolicy, cluster_nodes: u32, want: u32, rng: &mut StdRng) -> Vec<u32> {
    assert!(
        want >= 1 && want <= cluster_nodes,
        "cannot place {want} nodes on a {cluster_nodes}-node cluster"
    );
    match policy {
        PlacementPolicy::Packed => (0..want).collect(),
        PlacementPolicy::Striped => (0..want)
            .map(|i| ((i as u64 * cluster_nodes as u64) / want as u64) as u32)
            .collect(),
        PlacementPolicy::Random => {
            // Partial Fisher–Yates over 0..cluster_nodes.
            let mut pool: Vec<u32> = (0..cluster_nodes).collect();
            for i in 0..want as usize {
                let j = rng.gen_range(i..pool.len());
                pool.swap(i, j);
            }
            let mut picked = pool[..want as usize].to_vec();
            picked.sort_unstable();
            picked
        }
    }
}

/// A stable 64-bit digest of one placement on one cluster grid — the
/// schedule-cache discriminant (`ConfigKey::with_placement` in
/// `mha-bench`) that keeps two jobs with the same `AlgoConfig` but
/// different node subsets from ever aliasing a cache entry.
pub fn placement_digest(cluster: ProcGrid, nodes: &[u32]) -> u64 {
    let mut fp = Fingerprinter::new();
    fp.push_u32(cluster.nodes())
        .push_u32(cluster.ppn())
        .push_usize(nodes.len());
    for &n in nodes {
        fp.push_u32(n);
    }
    fp.finish().0
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn packed_and_striped_are_deterministic() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(
            place(PlacementPolicy::Packed, 8, 3, &mut rng),
            vec![0, 1, 2]
        );
        assert_eq!(
            place(PlacementPolicy::Striped, 8, 3, &mut rng),
            vec![0, 2, 5]
        );
        assert_eq!(
            place(PlacementPolicy::Striped, 8, 8, &mut rng),
            (0..8).collect::<Vec<_>>()
        );
    }

    #[test]
    fn random_placements_are_distinct_sorted_and_seed_stable() {
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            place(PlacementPolicy::Random, 16, 6, &mut rng)
        };
        let a = draw(7);
        assert_eq!(a, draw(7), "same seed must redraw the same subset");
        assert!(
            a.windows(2).all(|w| w[0] < w[1]),
            "sorted + distinct: {a:?}"
        );
        assert!(a.iter().all(|&n| n < 16));
        assert_ne!(a, draw(8), "different seeds should move the subset");
    }

    #[test]
    fn digest_separates_cluster_and_subset() {
        let g = ProcGrid::new(8, 4);
        let d = placement_digest(g, &[0, 1, 2]);
        assert_eq!(d, placement_digest(g, &[0, 1, 2]));
        assert_ne!(d, placement_digest(g, &[0, 1, 3]));
        assert_ne!(d, placement_digest(ProcGrid::new(16, 4), &[0, 1, 2]));
        assert_ne!(d, placement_digest(ProcGrid::new(8, 2), &[0, 1, 2]));
    }

    #[test]
    #[should_panic(expected = "cannot place")]
    fn oversized_requests_are_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        place(PlacementPolicy::Packed, 4, 5, &mut rng);
    }
}
