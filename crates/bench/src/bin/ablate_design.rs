//! Ablation over the MHA-inter design space: phase-2 algorithm × offload
//! policy × phase-2/3 overlap — quantifying how much each design choice
//! of Section 3.2 contributes.

use mha_apps::report::Table;
use mha_collectives::mha::{build_mha_inter, InterAlgo, MhaInterConfig, Offload};
use mha_sched::ProcGrid;
use mha_simnet::{ClusterSpec, Simulator};

fn main() {
    mha_bench::apply_check_flag();
    let spec = ClusterSpec::thor();
    let sim = Simulator::new(spec.clone()).unwrap();
    let grid = ProcGrid::new(8, 16);
    let msg = 64 * 1024;
    let mut t = Table::new(
        "Ablation: MHA-inter design choices, 8 nodes x 16 PPN, 64 KB per rank",
        "configuration",
        vec!["latency_us".into(), "vs_full_design_pct".into()],
    );
    let full = MhaInterConfig::default();
    let full_t = {
        let built = build_mha_inter(grid, msg, full, &spec).unwrap();
        sim.run(&built.sched).unwrap().latency_us()
    };
    let variants = [
        ("full design (ring, eq1 offload, overlap)", full),
        (
            "no phase-1 offload",
            MhaInterConfig {
                offload: Offload::None,
                ..full
            },
        ),
        (
            "no phase-2/3 overlap",
            MhaInterConfig {
                overlap: false,
                ..full
            },
        ),
        (
            "RD phase 2",
            MhaInterConfig {
                inter: InterAlgo::RecursiveDoubling,
                ..full
            },
        ),
        (
            "RD, no overlap, no offload",
            MhaInterConfig {
                inter: InterAlgo::RecursiveDoubling,
                offload: Offload::None,
                overlap: false,
            },
        ),
    ];
    for (name, cfg) in variants {
        let built = build_mha_inter(grid, msg, cfg, &spec).unwrap();
        let lat = sim.run(&built.sched).unwrap().latency_us();
        t.push(name, vec![lat, (lat / full_t - 1.0) * 100.0]);
    }
    mha_bench::emit(&t, "ablate_design");
}
