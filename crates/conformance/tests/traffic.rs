//! The tenant-oracle acceptance bar.
//!
//! ≥ 100 seeded multi-tenant traffic scenarios, alternating hand-built
//! disjoint placements with random contended ones, must all pass with
//! the engine's invariant audit armed: disjoint tenants finish
//! bit-identically to their solo runs, and no simulator resource ever
//! carries more bytes than `capacity × makespan`.

use mha_conformance::{run_traffic_oracle, TrafficOracleConfig};

#[test]
fn traffic_oracle_sweep_has_zero_disagreements() {
    let cfg = TrafficOracleConfig::from_env();
    assert!(cfg.cases >= 100, "acceptance bar requires >= 100 cases");
    let report = run_traffic_oracle(&cfg);
    assert_eq!(report.cases, cfg.cases);
    assert!(
        report.is_clean(),
        "{} disagreement(s):\n{}",
        report.disagreements.len(),
        report.disagreements.join("\n")
    );
}
