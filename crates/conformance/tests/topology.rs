//! Satellite property of the generic composer: over 200 seeded random
//! topology trees (depth 1–4, mixed fanouts, random per-level plan knobs)
//! every composed schedule passes the structural validator, is race-free,
//! and survives the simulator's full invariant audit — and the composed
//! schedules slot into the fuzzer's spec space like any hand-written
//! builder's output (spec round-trip + seeded mutants killed).

use mha_collectives::mha::{InterAlgo, Offload};
use mha_collectives::{build_composed, Built, ComposePlan};
use mha_conformance::fuzz::apply;
use mha_conformance::{judge, seeded_mutants, FuzzTarget, SchedSpec};
use mha_sched::{InvariantProbe, Topology};
use mha_simnet::{ClusterSpec, Simulator};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Draws a random tree and a matching hierarchical plan. Depth 1 is a
/// pure leaf gather; depth ≥ 2 places an exchange at the top (recursive
/// doubling pinned to power-of-two node counts) and an import round per
/// middle level.
fn sample_tree(rng: &mut StdRng) -> (Topology, ComposePlan, usize) {
    let depth = rng.gen_range(1..=4usize);
    let gather = if rng.gen_range(0..2u32) == 0 {
        Offload::None
    } else {
        Offload::Auto
    };
    let msg = [64usize, 256, 1024][rng.gen_range(0..3usize)];
    if depth == 1 {
        let topo = Topology::from_fanouts(&[rng.gen_range(1..=8u32)]);
        return (topo, ComposePlan::gather(gather), msg);
    }
    let inter = if rng.gen_range(0..2u32) == 0 {
        InterAlgo::Ring
    } else {
        InterAlgo::RecursiveDoubling
    };
    let nodes = match inter {
        InterAlgo::Ring => rng.gen_range(2..=4),
        InterAlgo::RecursiveDoubling => [2u32, 4][rng.gen_range(0..2usize)],
    };
    let mut fanouts = vec![nodes];
    for _ in 1..depth - 1 {
        fanouts.push(rng.gen_range(1..=2));
    }
    fanouts.push(rng.gen_range(1..=4));
    let topo = Topology::from_fanouts(&fanouts);
    let plan = ComposePlan::hierarchical(
        depth,
        inter,
        rng.gen_range(0..2u32) == 0,
        rng.gen_range(0..2u32) == 0,
        gather,
    );
    (topo, plan, msg)
}

fn build(topo: &Topology, plan: &ComposePlan, msg: usize, spec: &ClusterSpec) -> Built {
    build_composed(topo, msg, plan, spec).unwrap_or_else(|e| {
        panic!(
            "compose failed on tree {:?} plan {}: {e:?}",
            topo.levels().iter().map(|l| l.fanout).collect::<Vec<_>>(),
            plan.name()
        )
    })
}

#[test]
fn two_hundred_random_trees_pass_every_structural_layer() {
    let spec = ClusterSpec::thor();
    let sim = Simulator::new(spec.clone()).unwrap();
    let mut rng = StdRng::seed_from_u64(0x7059);
    let mut deepest = 0usize;
    for i in 0..200 {
        let (topo, plan, msg) = sample_tree(&mut rng);
        deepest = deepest.max(topo.depth());
        let built = build(&topo, &plan, msg, &spec);
        let label = format!("case {i}: {} over {:?}", plan.name(), topo.levels());

        mha_sched::validate(&built.sched, Some(spec.rails))
            .unwrap_or_else(|e| panic!("{label}: validate: {e}"));
        let races = mha_sched::check_races(&built.sched);
        assert!(races.is_empty(), "{label}: {} races", races.len());

        let mut audit = InvariantProbe::new();
        sim.run_probed(&built.sched, &mut audit)
            .unwrap_or_else(|e| panic!("{label}: simnet: {e}"));
        assert!(
            audit.is_clean(),
            "{label}: invariant violations: {:?}",
            audit.violations()
        );
    }
    assert_eq!(deepest, 4, "sampler never reached the maximum depth");
}

#[test]
fn composed_schedules_enter_the_fuzzer_spec_space() {
    let spec = ClusterSpec::thor();
    let mut rng = StdRng::seed_from_u64(0x7059);
    let mut fuzzed = 0usize;
    while fuzzed < 4 {
        let (topo, plan, msg) = sample_tree(&mut rng);
        if topo.depth() < 3 || topo.nranks() < 8 {
            continue; // fuzz only non-trivial deep trees; shallow ones are
                      // covered by tests/fuzz.rs
        }
        fuzzed += 1;
        let built = build(&topo, &plan, msg, &spec);

        // Spec round-trip: the composed schedule is expressible in (and
        // rebuildable from) the fuzzer's mutation space.
        let round = SchedSpec::from_schedule(&built.sched).build().freeze();
        assert_eq!(round.n_ops(), built.sched.n_ops());

        // from_built asserts the pristine target passes the judge; every
        // seeded mutant class must then be killed, exactly as for the
        // hand-written builders.
        let target = FuzzTarget::from_built(&built, spec.rails);
        for (class, m) in seeded_mutants(&target.spec) {
            let mutant = apply(&target.spec, m).unwrap();
            assert!(
                judge(&target, &mutant).killed(),
                "{} over {:?}: seeded mutant {class} survived",
                plan.name(),
                topo.levels()
            );
        }
    }
}
