//! Two-level (leader-based) Allgather baselines from the related work the
//! paper builds on and criticizes (Section 1.1 / Section 6).

mod multi_leader;
mod single_leader;

pub use multi_leader::build_multi_leader;
pub(crate) use multi_leader::emit_multi_leader;
pub use single_leader::build_single_leader;
pub(crate) use single_leader::emit_single_leader;
