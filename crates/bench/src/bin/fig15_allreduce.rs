//! Figure 15: Ring-Allreduce at 32 PPN on 8/16/32 nodes. Both library
//! surrogates run the classic flat Ring-Allreduce (identical behaviour at
//! these sizes), so the table has one baseline column; MHA swaps the
//! Allgather phase for the hierarchical design (Section 5.4). Each node
//! count runs as one campaign (see `mha_bench::campaign`).

use mha_apps::Contestant;
use mha_bench::campaign::{allreduce_sweep, CampaignConfig};
use mha_collectives::Library;
use mha_sched::ProcGrid;
use mha_simnet::ClusterSpec;

fn main() {
    mha_bench::apply_check_flag();
    let spec = ClusterSpec::thor();
    let cfg = CampaignConfig::from_env();
    let sizes_bytes = [64 * 1024usize, 2 << 20, 16 << 20, 128 << 20];
    for nodes in [8u32, 16, 32] {
        let grid = ProcGrid::new(nodes, 32);
        let t = allreduce_sweep(
            &format!(
                "Figure 15: Allreduce latency (us), {nodes} nodes x 32 PPN \
                 (flat ring = HPC-X and MVAPICH2-X surrogate)"
            ),
            grid,
            &sizes_bytes,
            &[Contestant::Library(Library::HpcX), Contestant::MhaTuned],
            vec!["FlatRing".into(), "MHA".into()],
            &spec,
            &cfg,
        )
        .unwrap();
        mha_bench::emit(&t, &format!("fig15_allreduce_{nodes}n"));
    }
    let sim = mha_simnet::Simulator::new(spec.clone()).unwrap();
    let built = mha_collectives::build_ring_allreduce(
        ProcGrid::new(8, 32),
        (2 << 20) / 4,
        mha_collectives::AllgatherPhase::MhaInter(Default::default()),
        &spec,
    )
    .unwrap();
    mha_bench::emit_run_summary(&sim, &built.sched, "fig15_allreduce");
}
