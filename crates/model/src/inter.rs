//! The MHA-inter cost model (Section 4.2, Eqs. 3–7).

use crate::intra::mha_intra_latency_auto;
use crate::params::ModelParams;

/// Which phase-2 algorithm the prediction is for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase2 {
    /// Recursive Doubling (Eq. 3 / Eq. 6).
    RecursiveDoubling,
    /// Ring (Eq. 4 / Eq. 7).
    Ring,
}

/// Eq. 3 — inter-leader Recursive Doubling over node blocks of `ml` bytes:
/// `α_H · log₂ N + (N − 1) · M·L / (BW_H · H)`.
pub fn phase2_rd(p: &ModelParams, n: u32, ml: usize) -> f64 {
    if n <= 1 {
        return 0.0;
    }
    let log_n = (n as f64).log2().ceil();
    p.rail_startup(ml) * log_n + (n as f64 - 1.0) * ml as f64 / (p.bw_h * f64::from(p.h))
}

/// Eq. 4 — inter-leader Ring:
/// `α_H · (N − 1) + (N − 1) · M·L / (BW_H · H)`.
pub fn phase2_ring(p: &ModelParams, n: u32, ml: usize) -> f64 {
    if n <= 1 {
        return 0.0;
    }
    let steps = n as f64 - 1.0;
    p.rail_startup(ml) * steps + steps * ml as f64 / (p.bw_h * f64::from(p.h))
}

/// Eq. 5 — one node-level broadcast of `s` bytes through shared memory:
/// copy-in by the leader plus the members' congested copy-out:
/// `(α_L + S/BW_L) + (α_L + S/BW_L) · cg(S, L−1)`.
pub fn intra_bcast(p: &ModelParams, s: usize, l: u32) -> f64 {
    let copy = p.t_l(s);
    copy + copy * p.cg(s, l.saturating_sub(1))
}

/// Eqs. 6/7 — the full MHA-inter prediction (seconds) for `n` nodes ×
/// `l` ppn with per-rank contribution `m`.
///
/// Both equations share the case split on whether the per-chunk broadcast
/// hides under the next network step (overlap intact) or the broadcasts
/// dominate (copy pipeline is the critical path):
///
/// * overlap intact — phase 1 + phase 2 + the final, un-hidable broadcast
///   (one chunk for Ring; the last `N/2` node blocks for RD, which is how
///   RD loses at scale, Figure 7);
/// * copy-bound — one network step to prime the pipe, then `N − 1`
///   back-to-back broadcasts.
pub fn mha_inter_latency(p: &ModelParams, n: u32, l: u32, m: usize, phase2: Phase2) -> f64 {
    let t_phase1 = mha_intra_latency_auto(p, l, m);
    if n <= 1 {
        return t_phase1;
    }
    let ml = l as usize * m;
    let bcast_chunk = intra_bcast(p, ml, l);
    match phase2 {
        Phase2::RecursiveDoubling => {
            let t2 = phase2_rd(p, n, ml);
            if bcast_chunk <= p.t_h(2 * ml) {
                // Final chunk of RD is N/2 node blocks.
                let final_bcast = intra_bcast(p, ml * (n as usize / 2).max(1), l);
                t_phase1 + t2 + final_bcast
            } else {
                t_phase1 + p.t_h(ml) + (n as f64 - 1.0) * bcast_chunk
            }
        }
        Phase2::Ring => {
            let t2 = phase2_ring(p, n, ml);
            if bcast_chunk <= p.t_h(ml) {
                t_phase1 + t2 + bcast_chunk
            } else {
                t_phase1 + p.t_h(ml) + (n as f64 - 1.0) * bcast_chunk
            }
        }
    }
}

/// The tuned prediction: the better of Ring and RD at this point.
pub fn mha_inter_latency_tuned(p: &ModelParams, n: u32, l: u32, m: usize) -> f64 {
    let ring = mha_inter_latency(p, n, l, m, Phase2::Ring);
    if n.is_power_of_two() {
        ring.min(mha_inter_latency(p, n, l, m, Phase2::RecursiveDoubling))
    } else {
        ring
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mha_simnet::ClusterSpec;

    fn p() -> ModelParams {
        ModelParams::from_spec(&ClusterSpec::thor())
    }

    #[test]
    fn phase2_ring_pays_more_startups_rd_same_volume() {
        let p = p();
        let (n, ml) = (16, 1 << 20);
        let ring = phase2_ring(&p, n, ml);
        let rd = phase2_rd(&p, n, ml);
        // Same bandwidth term, Ring has N−1 vs log N startups.
        assert!(ring > rd);
        let volume = (n as f64 - 1.0) * ml as f64 / (p.bw_h * 2.0);
        assert!((ring - rd) < 0.5 * volume);
    }

    #[test]
    fn copy_bound_predictions_coincide() {
        // Eqs. 6 and 7 share an identical "otherwise" branch: once the
        // per-chunk broadcast exceeds the network step, the model predicts
        // the same copy-pipeline-bound latency for Ring and RD. (The
        // simulator still separates them via tail effects — which is why
        // the paper tunes empirically rather than from the model alone.)
        let p = p();
        let (n, l, m) = (32, 8, 1 << 20);
        let ring = mha_inter_latency(&p, n, l, m, Phase2::Ring);
        let rd = mha_inter_latency(&p, n, l, m, Phase2::RecursiveDoubling);
        assert_eq!(ring, rd);
        // And that regime is indeed copy-bound.
        let ml = l as usize * m;
        assert!(intra_bcast(&p, ml, l) > p.t_h(2 * ml));
    }

    #[test]
    fn rd_tail_broadcast_is_larger_in_overlap_regime() {
        // In the overlap-intact regime RD's final, un-hidable broadcast
        // covers N/2 node blocks versus Ring's single block (Figure 7) —
        // visible as a larger phase-3 remainder once the phase-2 terms are
        // subtracted out.
        let p = p();
        let (n, l, m) = (32, 2, 8 * 1024);
        let ml = l as usize * m;
        // Confirm both case conditions select the overlap branch.
        assert!(intra_bcast(&p, ml, l) <= p.t_h(2 * ml));
        assert!(intra_bcast(&p, ml, l) <= p.t_h(ml));
        let base = crate::intra::mha_intra_latency_auto(&p, l, m);
        let ring_tail =
            mha_inter_latency(&p, n, l, m, Phase2::Ring) - phase2_ring(&p, n, ml) - base;
        let rd_tail =
            mha_inter_latency(&p, n, l, m, Phase2::RecursiveDoubling) - phase2_rd(&p, n, ml) - base;
        assert!(
            rd_tail > 4.0 * ring_tail,
            "rd tail {rd_tail} vs ring tail {ring_tail}"
        );
    }

    #[test]
    fn rd_wins_for_small_messages() {
        let p = p();
        let (n, l, m) = (32, 2, 64);
        let ring = mha_inter_latency(&p, n, l, m, Phase2::Ring);
        let rd = mha_inter_latency(&p, n, l, m, Phase2::RecursiveDoubling);
        assert!(rd < ring, "rd {rd} vs ring {ring}");
    }

    #[test]
    fn tuned_is_min_of_both() {
        let p = p();
        for m in [64usize, 4096, 1 << 20] {
            let tuned = mha_inter_latency_tuned(&p, 16, 8, m);
            let ring = mha_inter_latency(&p, 16, 8, m, Phase2::Ring);
            let rd = mha_inter_latency(&p, 16, 8, m, Phase2::RecursiveDoubling);
            assert_eq!(tuned, ring.min(rd));
        }
    }

    #[test]
    fn single_node_reduces_to_phase1() {
        let p = p();
        assert_eq!(
            mha_inter_latency(&p, 1, 8, 4096, Phase2::Ring),
            mha_intra_latency_auto(&p, 8, 4096)
        );
    }

    #[test]
    fn prediction_grows_with_nodes_and_message() {
        let p = p();
        assert!(
            mha_inter_latency(&p, 16, 8, 1 << 20, Phase2::Ring)
                > mha_inter_latency(&p, 8, 8, 1 << 20, Phase2::Ring)
        );
        assert!(
            mha_inter_latency(&p, 8, 8, 1 << 20, Phase2::Ring)
                > mha_inter_latency(&p, 8, 8, 1 << 10, Phase2::Ring)
        );
    }
}
