//! Figures 6/7: overlap of inter-node transfers with intra-node shm copies
//! during phases 2/3, Ring vs Recursive Doubling.

use mha_apps::report::Table;
use mha_collectives::mha::{build_mha_inter, InterAlgo, MhaInterConfig, Offload};
use mha_sched::ProcGrid;
use mha_simnet::{intersection_length, ClusterSpec, SimConfig, Simulator};

fn main() {
    let spec = ClusterSpec::thor();
    let sim = Simulator::new(spec.clone()).unwrap();
    let msg = 64 * 1024;
    let mut t = Table::new(
        "Figure 6/7: phase-2/3 overlap, 8 nodes, 64 KB per rank \
         (PPN 4 = network-bound regime, PPN 32 = copy-bound regime)",
        "config",
        vec![
            "latency_us".into(),
            "net_busy_us".into(),
            "copy_busy_us".into(),
            "overlap_us".into(),
            "overlap_pct_of_net".into(),
        ],
    );
    for (ppn, algo, name) in [
        (4u32, InterAlgo::Ring, "ppn4/Ring"),
        (4, InterAlgo::RecursiveDoubling, "ppn4/RD"),
        (32, InterAlgo::Ring, "ppn32/Ring"),
        (32, InterAlgo::RecursiveDoubling, "ppn32/RD"),
    ] {
        let grid = ProcGrid::new(8, ppn);
        let cfg = MhaInterConfig {
            inter: algo,
            offload: Offload::None, // isolate the phase-2/3 overlap effect
            overlap: true,
        };
        let built = build_mha_inter(grid, msg, cfg, &spec).unwrap();
        let res = sim
            .run_with(&built.sched, SimConfig { trace: true })
            .unwrap();
        let latency_us = res.latency_us();
        let trace = res.trace.unwrap();
        // Phase-2 network transfers carry step tags >= 1000; phase-3
        // copies >= 2000.
        let net = trace.intervals_where(|s, m| {
            let _ = s;
            m.kind == "rails" && m.step.is_some_and(|st| st >= 1000)
        });
        let copies = trace.intervals_where(|s, m| {
            let _ = s;
            m.kind == "copy" && m.step.is_some_and(|st| st >= 2000)
        });
        let net_busy = mha_simnet::union_length(&net) * 1e6;
        let copy_busy = mha_simnet::union_length(&copies) * 1e6;
        let overlap = intersection_length(&net, &copies) * 1e6;
        t.push(
            name,
            vec![
                latency_us,
                net_busy,
                copy_busy,
                overlap,
                100.0 * overlap / net_busy.max(1e-12),
            ],
        );
    }
    mha_bench::emit(&t, "fig07_overlap");
}
