//! Multi-leader Allgather (Kandalla et al. \[14\]) — the design the paper's
//! motivation (Figure 2) criticizes, and our surrogate for MVAPICH2-X's
//! large-message behaviour.
//!
//! Ranks on each node are split into `G` groups with one leader each. Phase
//! 1 gathers each group's blocks to its leader through shm; phase 2 runs a
//! *flat ring over all `N·G` leaders* — blending intra-node and inter-node
//! hops, so the ring is throttled by the slower intra-node links; phase 3
//! broadcasts each leader's full result through the group's shm segment.
//! The phases are strictly sequential ("a phase starts right after the
//! previous one has finished" — Section 1.1).

use mha_sched::{Loc, OpId, ProcGrid, RankId};

use crate::ctx::{BuildError, Built, Ctx};

/// Builds the multi-leader design with `groups` leader groups per node.
///
/// # Errors
///
/// [`BuildError::BadParameter`] if `groups` is zero or does not divide the
/// processes-per-node count.
pub fn build_multi_leader(grid: ProcGrid, msg: usize, groups: u32) -> Result<Built, BuildError> {
    let l = grid.ppn();
    if groups == 0 || !l.is_multiple_of(groups) {
        return Err(BuildError::BadParameter(format!(
            "{groups} groups do not divide {l} processes per node"
        )));
    }
    let mut ctx = Ctx::new(grid, msg, format!("twolevel-multi-leader(g={groups})"));
    if ctx.is_degenerate() {
        return Ok(ctx.finish_degenerate());
    }
    emit_multi_leader(&mut ctx, groups);
    Ok(ctx.finish())
}

/// Emits the three strictly-sequential multi-leader phases into an existing
/// context. The caller has already checked divisibility and non-degeneracy.
pub(crate) fn emit_multi_leader(ctx: &mut Ctx, groups: u32) {
    let grid = ctx.grid();
    let l = grid.ppn();
    let msg = ctx.msg;
    let lg = l / groups; // ranks per group
    let ng = grid.nodes() * groups; // total leaders
    let total = grid.nranks() as usize * msg;

    // Leader of global group `gg` (node gg / groups, group gg % groups).
    let leader = |gg: u32| RankId((gg / groups) * l + (gg % groups) * lg);
    // Global rank-block range of group `gg`.
    let group_first_block = |gg: u32| (gg / groups) * l + (gg % groups) * lg;

    // Per-group shm segment sized for the full result (phase 3 reuses it).
    let shm: Vec<_> = (0..ng)
        .map(|gg| {
            let node = mha_sched::NodeId(gg / groups);
            ctx.b.shared_buf(node, total, format!("shm/g{gg}"))
        })
        .collect();

    // ---- Phase 1: gather each group's blocks to its leader. -------------
    // ready[gg]: op after which leader gg's recv holds its group region.
    let mut ready: Vec<OpId> = Vec::with_capacity(ng as usize);
    for gg in 0..ng {
        let lead = leader(gg);
        let mut deposits = Vec::with_capacity(lg as usize);
        for j in 0..lg {
            let rank = RankId(lead.0 + j);
            let deps = ctx.cur.deps_of(rank);
            let dst = Loc::new(shm[gg as usize], rank.index() * msg);
            let op = ctx.b.copy(rank, ctx.send_loc(rank), dst, msg, &deps, 0);
            ctx.cur.advance(rank, op);
            deposits.push(op);
        }
        // Leader pulls the contiguous group region into its recv buffer.
        let first = group_first_block(gg) as usize;
        let deps = ctx.cur.deps_with(lead, &deposits);
        let op = ctx.b.copy(
            lead,
            Loc::new(shm[gg as usize], first * msg),
            Loc::new(ctx.recv[lead.index()], first * msg),
            lg as usize * msg,
            &deps,
            1,
        );
        ctx.cur.advance(lead, op);
        ready.push(op);
    }

    // ---- Phase 2: flat ring over all leaders (group-block granularity). --
    if ng > 1 {
        let mut avail: Vec<OpId> = ready.clone();
        for s in 0..ng - 1 {
            let mut next_avail = avail.clone();
            for gg in 0..ng {
                let sender = (gg + ng - 1) % ng;
                let group_block = (sender + ng - s) % ng;
                let (lsrc, ldst) = (leader(sender), leader(gg));
                let ch = ctx.channel_between(lsrc, ldst);
                let off = group_first_block(group_block) as usize * msg;
                let mut deps = vec![avail[sender as usize]];
                deps.extend(ctx.cur.deps_of(ldst));
                deps.extend(ctx.cur.deps_of(lsrc));
                let t = ctx.b.transfer(
                    lsrc,
                    ldst,
                    Loc::new(ctx.recv[lsrc.index()], off),
                    Loc::new(ctx.recv[ldst.index()], off),
                    lg as usize * msg,
                    ch,
                    &deps,
                    1000 + s,
                );
                next_avail[gg as usize] = t;
            }
            for gg in 0..ng {
                ctx.cur.advance(leader(gg), next_avail[gg as usize]);
            }
            avail = next_avail;
        }
    }

    // ---- Phase 3 (sequential): leaders publish, members copy out. --------
    for gg in 0..ng {
        let lead = leader(gg);
        let deps = ctx.cur.deps_of(lead);
        let publish = ctx.b.copy(
            lead,
            Loc::new(ctx.recv[lead.index()], 0),
            Loc::new(shm[gg as usize], 0),
            total,
            &deps,
            2000,
        );
        ctx.cur.advance(lead, publish);
        for j in 1..lg {
            let rank = RankId(lead.0 + j);
            let deps = ctx.cur.deps_with(rank, &[publish]);
            let op = ctx.b.copy(
                rank,
                Loc::new(shm[gg as usize], 0),
                Loc::new(ctx.recv[rank.index()], 0),
                total,
                &deps,
                2001,
            );
            ctx.cur.advance(rank, op);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::testutil::assert_allgather_correct;
    use mha_simnet::{ClusterSpec, Simulator};

    #[test]
    fn multi_leader_is_correct() {
        for (nodes, ppn, g) in [
            (1, 4, 2),
            (2, 4, 1),
            (2, 4, 2),
            (2, 4, 4),
            (3, 6, 2),
            (4, 2, 2),
            (2, 1, 1),
        ] {
            let built = build_multi_leader(ProcGrid::new(nodes, ppn), 16, g).unwrap();
            assert_allgather_correct(&built);
        }
    }

    #[test]
    fn bad_group_counts_rejected() {
        assert!(matches!(
            build_multi_leader(ProcGrid::new(2, 4), 8, 3).unwrap_err(),
            BuildError::BadParameter(_)
        ));
        assert!(matches!(
            build_multi_leader(ProcGrid::new(2, 4), 8, 0).unwrap_err(),
            BuildError::BadParameter(_)
        ));
    }

    #[test]
    fn phase2_mixes_intra_and_inter_hops() {
        // The criticized blend: with 2 groups per node, half the ring hops
        // stay inside a node (CMA), half cross nodes.
        let built = build_multi_leader(ProcGrid::new(2, 4), 64, 2).unwrap();
        let stats = built.sched.stats();
        assert!(stats.cma_transfers > 0, "expected intra-node ring hops");
        assert!(stats.rail_transfers > 0, "expected inter-node ring hops");
    }

    #[test]
    fn mha_inter_beats_multi_leader_for_large_messages() {
        // The paper's headline comparison (Figures 12-14, MVAPICH2-X side).
        let spec = ClusterSpec::thor();
        let sim = Simulator::new(spec.clone()).unwrap();
        let grid = ProcGrid::new(8, 8);
        let msg = 128 * 1024;
        let ml = build_multi_leader(grid, msg, 2).unwrap();
        let mha =
            crate::mha::build_mha_inter(grid, msg, crate::mha::MhaInterConfig::default(), &spec)
                .unwrap();
        let t_ml = sim.run(&ml.sched).unwrap().latency_us();
        let t_mha = sim.run(&mha.sched).unwrap().latency_us();
        assert!(
            t_mha < t_ml * 0.8,
            "mha {t_mha} should clearly beat multi-leader {t_ml}"
        );
    }
}
