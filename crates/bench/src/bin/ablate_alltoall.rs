//! Extension experiment: hierarchical (node-aggregated) Alltoall vs the
//! flat shifted-direct algorithm — message-count aggregation at work.

use mha_apps::report::{fmt_bytes, Table};
use mha_collectives::{build_direct_alltoall, build_mha_alltoall};
use mha_sched::ProcGrid;
use mha_simnet::{size_sweep, ClusterSpec, Simulator};

fn main() {
    mha_bench::apply_check_flag();
    let spec = ClusterSpec::thor();
    let sim = Simulator::new(spec.clone()).unwrap();
    let grid = ProcGrid::new(8, 8);
    let mut t = Table::new(
        "Extension: Alltoall, 8 nodes x 8 PPN",
        "msg_bytes",
        vec![
            "flat_direct_us".into(),
            "mha_alltoall_us".into(),
            "gain_pct".into(),
        ],
    );
    for msg in size_sweep(64, 64 * 1024) {
        let flat = build_direct_alltoall(grid, msg);
        let mha = build_mha_alltoall(grid, msg, &spec).unwrap();
        let t_flat = sim.run(&flat.sched).unwrap().latency_us();
        let t_mha = sim.run(&mha.sched).unwrap().latency_us();
        t.push(
            fmt_bytes(msg),
            vec![t_flat, t_mha, (1.0 - t_mha / t_flat) * 100.0],
        );
    }
    mha_bench::emit(&t, "ablate_alltoall");
}
