//! Figure 3: inter-node latency with one and two HCAs (striping halves
//! large-message latency above the 16 KB threshold). Each message size is
//! one campaign point (see `mha_bench::campaign`).

use std::sync::Arc;

use mha_apps::report::{fmt_bytes, Table};
use mha_bench::campaign::{run_campaign, CampaignConfig, CampaignPoint, Row};
use mha_simnet::{pt2pt_latency_us, size_sweep, ClusterSpec, Placement, Simulator};

fn main() {
    mha_bench::apply_check_flag();
    let two = Arc::new(Simulator::new(ClusterSpec::thor()).unwrap());
    let one = Arc::new(Simulator::new(ClusterSpec::thor_single_rail()).unwrap());
    let sizes = size_sweep(8 * 1024, 4 << 20);
    let points: Vec<CampaignPoint> = sizes
        .iter()
        .map(|&m| {
            let two = Arc::clone(&two);
            let one = Arc::clone(&one);
            CampaignPoint::custom(fmt_bytes(m), move |_seed| {
                let l1 =
                    pt2pt_latency_us(&one, Placement::InterNode, m).map_err(|e| e.to_string())?;
                let l2 =
                    pt2pt_latency_us(&two, Placement::InterNode, m).map_err(|e| e.to_string())?;
                Ok(vec![Row::new(fmt_bytes(m), vec![l1, l2])])
            })
        })
        .collect();
    let report = run_campaign(&points, &CampaignConfig::from_env()).unwrap();
    let mut t = Table::new(
        "Figure 3: inter-node pt2pt latency (us), 1 vs 2 HCAs",
        "msg_bytes",
        vec!["1 HCA".into(), "2 HCAs".into()],
    );
    for pr in &report.results {
        for row in &pr.rows {
            t.push(row.label.clone(), row.values.clone());
        }
    }
    mha_bench::emit(&t, "fig03_latency");
    mha_bench::emit_run_summary(
        &two,
        &mha_bench::pt2pt_rails_schedule(4 << 20),
        "fig03_latency",
    );
}
