//! Satellite property: tenant isolation and contention monotonicity.
//!
//! * Tenants placed on **disjoint** node blocks finish bit-identically to
//!   running each tenant's jobs alone on the same cluster — sharing an
//!   engine instance must be unobservable without shared resources.
//! * Jobs on **overlapping** placements never finish *earlier* than the
//!   same job running solo: contention can only slow a job down.

use mha_collectives::AlgoConfig;
use mha_simnet::ClusterSpec;
use mha_traffic::{
    default_builder, run_jobs, tenant_jobs, Arrival, JobSpec, PlacementPolicy, TrafficSpec,
    WorkloadMix,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A spec whose cluster/ppn drive `default_builder`; the arrival fields are
/// unused because jobs are hand-built below.
fn harness(ppn: u32, tenants: u32) -> TrafficSpec {
    TrafficSpec {
        cluster: ClusterSpec::thor(),
        nodes: 8,
        ppn,
        arrival: Arrival::Trace(Vec::new()),
        mix: WorkloadMix::paper_default(8),
        policy: PlacementPolicy::Packed,
        tenants,
        seed: 0,
    }
}

/// Hand-build tenants on provably disjoint contiguous 2-node blocks.
fn disjoint_jobs(spec: &TrafficSpec, rng: &mut StdRng) -> Vec<JobSpec> {
    let mix = WorkloadMix::paper_default(2);
    let mut jobs = Vec::new();
    for tenant in 0..spec.tenants {
        let base = tenant * 2;
        let count = rng.gen_range(1..=2u32);
        for _ in 0..count {
            let (cfg, width, msg) = mix.sample(spec.ppn, rng);
            assert_eq!(width, 2, "paper_default(2) only emits 2-node jobs");
            jobs.push(JobSpec {
                id: jobs.len() as u32,
                tenant,
                cfg,
                msg,
                nodes: (base..base + 2).collect(),
                release: rng.gen_range(0.0..5e-5),
                after: None,
            });
        }
    }
    jobs
}

#[test]
fn disjoint_tenants_are_bitwise_isolated() {
    for seed in 0..8u64 {
        let mut rng = StdRng::seed_from_u64(0x150_0000 + seed);
        let ppn = if seed % 2 == 0 { 1 } else { 2 };
        let spec = harness(ppn, 3);
        let jobs = disjoint_jobs(&spec, &mut rng);

        let merged = run_jobs(&spec, &jobs, &mut default_builder(&spec)).unwrap();
        for tenant in 0..spec.tenants {
            let mine = tenant_jobs(&jobs, tenant);
            let solo = run_jobs(&spec, &mine, &mut default_builder(&spec)).unwrap();
            for rec in &solo.jobs {
                let shared = merged
                    .jobs
                    .iter()
                    .find(|r| r.job.id == rec.job.id)
                    .expect("job present in merged run");
                assert_eq!(
                    shared.arrival.to_bits(),
                    rec.arrival.to_bits(),
                    "seed {seed} tenant {tenant} job {}: arrival drifted",
                    rec.job.id
                );
                assert_eq!(
                    shared.end.to_bits(),
                    rec.end.to_bits(),
                    "seed {seed} tenant {tenant} job {}: disjoint tenant not isolated",
                    rec.job.id
                );
            }
        }
    }
}

#[test]
fn overlapping_jobs_never_beat_their_solo_latency() {
    for seed in 0..6u64 {
        let mut rng = StdRng::seed_from_u64(0xC0_47E0 + seed);
        let spec = harness(2, 1);
        let grid = mha_sched::ProcGrid::new(4, spec.ppn);
        // Everyone lands on nodes {0..4}: full overlap. Messages at or
        // above the 16 KiB stripe threshold so rail assignment is the
        // deterministic striped path in solo and merged runs alike.
        let n_jobs = rng.gen_range(2..=4u32);
        let jobs: Vec<JobSpec> = (0..n_jobs)
            .map(|i| JobSpec {
                id: i,
                tenant: 0,
                cfg: AlgoConfig::default().coerce_for(grid),
                msg: 1usize << rng.gen_range(14..=16u32),
                nodes: (0..4).collect(),
                release: f64::from(i) * rng.gen_range(1e-6..8e-6),
                after: None,
            })
            .collect();

        let merged = run_jobs(&spec, &jobs, &mut default_builder(&spec)).unwrap();
        for job in &jobs {
            let solo = run_jobs(
                &spec,
                std::slice::from_ref(job),
                &mut default_builder(&spec),
            )
            .unwrap();
            let solo_lat = solo.jobs[0].latency();
            let shared = merged
                .jobs
                .iter()
                .find(|r| r.job.id == job.id)
                .expect("job present in merged run");
            let merged_lat = shared.latency();
            assert!(
                merged_lat >= solo_lat * (1.0 - 1e-9),
                "seed {seed} job {}: contended latency {merged_lat:e} beat solo {solo_lat:e}",
                job.id
            );
        }
    }
}
