//! A bucketed calendar queue — the engine's event queue.
//!
//! Classic Brown-style calendar queue specialized for the simulator's
//! access pattern: virtual time only moves forward, every push is at or
//! after the time of the last pop, and superseded events (a rescheduled
//! flow-completion prediction, a stalled flow's obsolete retry) are
//! *deleted by key* instead of being left behind to pop as stale no-ops.
//!
//! Events live in `2^k` buckets of virtual-time width `width`; an event at
//! time `t` belongs to cell `⌊t / width⌋` and hashes to bucket
//! `cell & (2^k − 1)`. Each bucket is kept **sorted ascending** by
//! `(time, seq)` — crucial because collective schedules produce huge runs
//! of *exactly tied* completion times (every rank of a symmetric ring step
//! finishes at the same instant), which no bucket width can separate. In a
//! sorted bucket a tied push appends at the back in O(1) (`seq` is
//! monotone), the pop takes the front in O(1), and only a keyed delete
//! pays a mid-deque memmove. An unsorted bucket would instead re-scan the
//! whole tie run on every pop, degrading to O(n) per event.
//!
//! A cursor (`cur_cell`) sweeps cells in order; a pop takes the cursor
//! bucket's front entry if it belongs to the current (or an earlier) cell.
//! Because `cell(t)` is monotone in `t` and pushes behind the cursor
//! rewind it, pops come out in exactly the total order `(time, seq)` — the
//! same order the `BinaryHeap` it replaces produced, so the swap cannot
//! perturb the simulation. Bucket geometry (count, width) only ever
//! affects speed, never order.
//!
//! Typical costs: O(1) push, O(1) pop, O(bucket occupancy) keyed delete.
//! A fully empty year falls back to a global min-scan that re-anchors the
//! cursor, so sparse far-future events (retry backoffs) stay correct. The
//! width self-tunes: when the average pop starts sweeping too many empty
//! cells, a same-size rebuild re-derives it from sampled inter-event gaps
//! (Brown's rule).

use std::collections::VecDeque;

/// One queued event. The composite sort key packs the event time's IEEE
/// bits over the sequence number — for the engine's non-negative finite
/// times, `f64::to_bits` is monotone, so `u128` order == `(time, seq)`
/// order, and the original time is recovered exactly for cell hashing.
#[derive(Debug, Clone, Copy)]
struct Entry<T> {
    key: u128,
    item: T,
}

#[inline]
fn key_of(time: f64, seq: u64) -> u128 {
    (u128::from(time.to_bits()) << 64) | u128::from(seq)
}

#[inline]
fn time_of(key: u128) -> f64 {
    f64::from_bits((key >> 64) as u64)
}

#[inline]
fn seq_of(key: u128) -> u64 {
    key as u64
}

/// Growth/shrink bounds: 64 buckets up to 2^20.
const MIN_BITS: u32 = 6;
const MAX_BITS: u32 = 20;

/// Re-tune cadence and the average per-pop cell-sweep length that
/// triggers it. A well-sized queue visits ~1 bucket per pop; sustained
/// long sweeps mean the width no longer matches the workload's
/// inter-event gap.
const TUNE_INTERVAL: u32 = 256;
const SCAN_BUDGET: u64 = 8;

/// A min-queue over `(time, seq)` with O(1) typical insert and pop and a
/// keyed removal. `time` must be non-negative and finite; `seq` must be
/// unique per live entry (the engine's push counter guarantees both).
#[derive(Debug)]
pub(crate) struct CalendarQueue<T> {
    buckets: Vec<VecDeque<Entry<T>>>,
    nbits: u32,
    width: f64,
    inv_width: f64,
    count: usize,
    /// The cell the pop scan resumes from; never ahead of the minimum
    /// live entry's cell.
    cur_cell: u64,
    /// Rebuild scratch, kept to avoid reallocating on resize.
    scratch: Vec<Entry<T>>,
    /// Pops since the last width check and the cells they swept; drives
    /// the self-tuning rebuild.
    pops_since_tune: u32,
    scan_since_tune: u64,
}

impl<T> Default for CalendarQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> CalendarQueue<T> {
    /// An empty queue with the default geometry (64 buckets, 1 µs wide).
    pub fn new() -> Self {
        CalendarQueue {
            buckets: (0..1usize << MIN_BITS).map(|_| VecDeque::new()).collect(),
            nbits: MIN_BITS,
            width: 1e-6,
            inv_width: 1e6,
            count: 0,
            cur_cell: 0,
            scratch: Vec::new(),
            pops_since_tune: 0,
            scan_since_tune: 0,
        }
    }

    /// Live entries.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn len(&self) -> usize {
        self.count
    }

    /// Drops every entry, keeping bucket allocations and the learned
    /// width (a warm queue re-runs the same workload without re-tuning).
    pub fn clear(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.count = 0;
        self.cur_cell = 0;
        self.pops_since_tune = 0;
        self.scan_since_tune = 0;
    }

    #[inline]
    fn mask(&self) -> u64 {
        (1u64 << self.nbits) - 1
    }

    /// The cell an event at `time` belongs to. The saturating f64→u64
    /// cast keeps this monotone in `time` even for degenerate widths, so
    /// ordering is preserved no matter how the geometry is tuned.
    #[inline]
    fn cell(&self, time: f64) -> u64 {
        (time * self.inv_width) as u64
    }

    /// Inserts `entry` into bucket `b`, keeping it sorted ascending by
    /// key. The overwhelmingly common case — a time at or past the
    /// bucket's back (ties arrive in `seq` order) — is an O(1) append.
    #[inline]
    fn insert_sorted(&mut self, b: usize, entry: Entry<T>) {
        let bucket = &mut self.buckets[b];
        match bucket.back() {
            None => bucket.push_back(entry),
            Some(back) if back.key <= entry.key => bucket.push_back(entry),
            _ => {
                let i = bucket.partition_point(|e| e.key < entry.key);
                bucket.insert(i, entry);
            }
        }
    }

    /// Inserts an event. O(1) plus an occasional rebuild when the queue
    /// outgrows its bucket array.
    pub fn push(&mut self, time: f64, seq: u64, item: T) {
        debug_assert!(time >= 0.0 && time.is_finite(), "event time {time}");
        if self.count >= self.buckets.len() * 2 && self.nbits < MAX_BITS {
            self.rebuild(self.nbits + 1);
        }
        let c = self.cell(time);
        if self.count == 0 || c < self.cur_cell {
            self.cur_cell = c;
        }
        let b = (c & self.mask()) as usize;
        self.insert_sorted(
            b,
            Entry {
                key: key_of(time, seq),
                item,
            },
        );
        self.count += 1;
    }

    /// Deletes the entry with sequence number `seq`, pushed at `time`.
    /// Returns whether it was found (it always is, if the caller's
    /// bookkeeping is right). O(bucket occupancy) for the mid-deque
    /// shift; the lookup itself is a binary search.
    pub fn remove(&mut self, time: f64, seq: u64) -> bool {
        let b = (self.cell(time) & self.mask()) as usize;
        let bucket = &mut self.buckets[b];
        match bucket.binary_search_by(|e| e.key.cmp(&key_of(time, seq))) {
            Ok(i) => {
                bucket.remove(i);
                self.count -= 1;
                true
            }
            Err(_) => false,
        }
    }

    /// Removes and returns the `(time, seq)`-minimum entry.
    pub fn pop(&mut self) -> Option<(f64, u64, T)> {
        if self.count == 0 {
            return None;
        }
        if self.pops_since_tune >= TUNE_INTERVAL {
            if self.scan_since_tune > u64::from(self.pops_since_tune) * SCAN_BUDGET {
                self.rebuild(self.nbits);
            }
            self.pops_since_tune = 0;
            self.scan_since_tune = 0;
        }
        self.pops_since_tune += 1;
        let nb = self.buckets.len();
        for _ in 0..nb {
            let b = (self.cur_cell & self.mask()) as usize;
            self.scan_since_tune += 1;
            // The bucket front is its minimum; if it belongs to the
            // current cell (or an earlier one — pushes behind the cursor
            // rewind it, but a same-bucket earlier year is also possible
            // after a rewind), it is the global minimum.
            if let Some(front) = self.buckets[b].front() {
                if self.cell(time_of(front.key)) <= self.cur_cell {
                    return Some(self.take_front(b));
                }
            }
            self.cur_cell += 1;
        }
        // A whole year was empty: the next event is far in the future.
        // Find it directly and re-anchor the cursor at its cell.
        self.scan_since_tune += self.count as u64;
        let mut at: Option<usize> = None;
        for (bi, bucket) in self.buckets.iter().enumerate() {
            if let Some(front) = bucket.front() {
                let better = match at {
                    None => true,
                    Some(bj) => front.key < self.buckets[bj].front().expect("non-empty").key,
                };
                if better {
                    at = Some(bi);
                }
            }
        }
        let bi = at.expect("count > 0 but no entry found");
        self.cur_cell = self.cell(time_of(self.buckets[bi].front().expect("non-empty").key));
        Some(self.take_front(bi))
    }

    fn take_front(&mut self, b: usize) -> (f64, u64, T) {
        let e = self.buckets[b].pop_front().expect("checked non-empty");
        self.count -= 1;
        if self.count * 4 < self.buckets.len() && self.nbits > MIN_BITS {
            self.rebuild(self.nbits - 1);
        }
        (time_of(e.key), seq_of(e.key), e.item)
    }

    /// Re-hashes every entry into `2^new_bits` buckets, re-deriving the
    /// width from a sample of inter-event gaps (Brown's rule: a few times
    /// the mean positive gap, so a cell holds O(1) distinct times).
    /// Deterministic: driven only by entry counts and times.
    fn rebuild(&mut self, new_bits: u32) {
        self.scratch.clear();
        for b in &mut self.buckets {
            self.scratch.extend(b.drain(..));
        }
        // Sample up to 64 event times for the width estimate.
        let mut times: Vec<f64> = self
            .scratch
            .iter()
            .take(64)
            .map(|e| time_of(e.key))
            .collect();
        times.sort_by(f64::total_cmp);
        let mut gap_sum = 0.0;
        let mut gaps = 0u32;
        for w in times.windows(2) {
            let g = w[1] - w[0];
            if g > 0.0 {
                gap_sum += g;
                gaps += 1;
            }
        }
        if gaps > 0 {
            let w = 3.0 * gap_sum / f64::from(gaps);
            if w.is_finite() && w > 0.0 {
                self.width = w;
                self.inv_width = 1.0 / w;
            }
        }
        self.nbits = new_bits;
        let n = 1usize << new_bits;
        if self.buckets.len() < n {
            self.buckets.resize_with(n, VecDeque::new);
        } else {
            self.buckets.truncate(n);
        }
        self.cur_cell = u64::MAX;
        let mask = self.mask();
        let mut moved = std::mem::take(&mut self.scratch);
        for e in moved.drain(..) {
            let c = self.cell(time_of(e.key));
            if c < self.cur_cell {
                self.cur_cell = c;
            }
            let b = (c & mask) as usize;
            // Inline sorted insert (self is partially borrowed by `moved`).
            let bucket = &mut self.buckets[b];
            match bucket.back() {
                Some(back) if back.key > e.key => {
                    let i = bucket.partition_point(|x| x.key < e.key);
                    bucket.insert(i, e);
                }
                _ => bucket.push_back(e),
            }
        }
        self.scratch = moved;
        if self.count == 0 {
            self.cur_cell = 0;
        }
        self.pops_since_tune = 0;
        self.scan_since_tune = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    fn xorshift(seed: &mut u64) -> u64 {
        *seed ^= *seed << 13;
        *seed ^= *seed >> 7;
        *seed ^= *seed << 17;
        *seed
    }

    /// Random interleaved pushes and pops must come out in exactly the
    /// order a binary heap produces.
    #[test]
    fn matches_binary_heap_order() {
        let mut seed = 0x1234_5678_9abc_def0u64;
        for round in 0..50 {
            let mut cal = CalendarQueue::new();
            let mut heap: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
            let mut seq = 0u64;
            let mut now = 0.0f64;
            for _ in 0..400 {
                let burst = 1 + (xorshift(&mut seed) % 4);
                for _ in 0..burst {
                    // Times from a wide dynamic range, always >= now.
                    let scale = 10f64.powi((xorshift(&mut seed) % 9) as i32 - 4);
                    let t = now + (xorshift(&mut seed) % 1000) as f64 * 1e-9 * scale;
                    seq += 1;
                    cal.push(t, seq, seq);
                    heap.push(Reverse((t.to_bits(), seq)));
                }
                if !xorshift(&mut seed).is_multiple_of(3) {
                    let got = cal.pop();
                    let want = heap.pop();
                    match (got, want) {
                        (Some((t, s, item)), Some(Reverse((tb, sb)))) => {
                            assert_eq!(t.to_bits(), tb, "round {round}");
                            assert_eq!(s, sb, "round {round}");
                            assert_eq!(item, s);
                            now = t;
                        }
                        (None, None) => {}
                        (g, w) => panic!("round {round}: {g:?} vs {w:?}"),
                    }
                }
            }
            while let Some(Reverse((tb, sb))) = heap.pop() {
                let (t, s, _) = cal.pop().expect("calendar ran dry early");
                assert_eq!((t.to_bits(), s), (tb, sb));
            }
            assert!(cal.pop().is_none());
            assert_eq!(cal.len(), 0);
        }
    }

    /// Massive exact-time ties — the collective-schedule signature — must
    /// stay cheap and pop in seq order. This exercises the O(1) tied
    /// append / O(1) front pop path.
    #[test]
    fn exact_ties_pop_in_seq_order() {
        let mut cal = CalendarQueue::new();
        let mut seq = 0u64;
        for step in 0..8u64 {
            let t = step as f64 * 1e-5;
            for _ in 0..500 {
                seq += 1;
                cal.push(t, seq, seq);
            }
        }
        let mut last = 0u64;
        let mut n = 0;
        while let Some((_, s, _)) = cal.pop() {
            assert!(s > last, "seq order violated: {s} after {last}");
            last = s;
            n += 1;
        }
        assert_eq!(n, 4000);
    }

    /// Keyed removal deletes exactly the named entry and leaves the rest
    /// of the order intact.
    #[test]
    fn remove_deletes_only_the_named_entry() {
        let mut cal = CalendarQueue::new();
        let mut keys = Vec::new();
        for i in 0..100u64 {
            let t = i as f64 * 1e-6;
            cal.push(t, i + 1, i);
            keys.push((t, i + 1));
        }
        // Remove every third entry.
        for (i, &(t, s)) in keys.iter().enumerate() {
            if i % 3 == 0 {
                assert!(cal.remove(t, s), "missing ({t}, {s})");
            }
        }
        assert!(!cal.remove(0.0, 1), "double remove must miss");
        let mut popped = Vec::new();
        while let Some((_, _, item)) = cal.pop() {
            popped.push(item);
        }
        let want: Vec<u64> = (0..100).filter(|i| i % 3 != 0).collect();
        assert_eq!(popped, want);
    }

    /// Equal times pop in sequence order — the engine's tie-break.
    #[test]
    fn equal_times_pop_in_seq_order() {
        let mut cal = CalendarQueue::new();
        for s in [5u64, 2, 9, 1, 7] {
            cal.push(1e-3, s, s);
        }
        let mut got = Vec::new();
        while let Some((_, s, _)) = cal.pop() {
            got.push(s);
        }
        assert_eq!(got, vec![1, 2, 5, 7, 9]);
    }

    /// A sparse far-future event (a retry backoff long after everything
    /// else drained) is found via the fallback scan.
    #[test]
    fn far_future_event_is_found() {
        let mut cal = CalendarQueue::new();
        for i in 0..10u64 {
            cal.push(i as f64 * 1e-7, i + 1, i);
        }
        cal.push(1e5, 999, 999); // ~28 virtual hours out
        for i in 0..10u64 {
            assert_eq!(cal.pop().unwrap().2, i);
        }
        assert_eq!(cal.pop().unwrap().2, 999);
        assert!(cal.pop().is_none());
    }

    /// Growth and shrink keep every entry and the order.
    #[test]
    fn resize_preserves_contents() {
        let mut cal = CalendarQueue::new();
        let n = 5000u64;
        for i in 0..n {
            cal.push((i % 977) as f64 * 3e-8, i + 1, i);
        }
        assert_eq!(cal.len(), n as usize);
        let mut last = (0.0f64, 0u64);
        let mut count = 0;
        while let Some((t, s, _)) = cal.pop() {
            assert!(
                t > last.0 || (t == last.0 && s > last.1),
                "order violated at ({t}, {s}) after {last:?}"
            );
            last = (t, s);
            count += 1;
        }
        assert_eq!(count, n);
    }

    /// `clear` empties the queue but keeps it usable.
    #[test]
    fn clear_then_reuse() {
        let mut cal = CalendarQueue::new();
        for i in 0..100u64 {
            cal.push(i as f64 * 1e-6, i + 1, i);
        }
        cal.clear();
        assert_eq!(cal.len(), 0);
        assert!(cal.pop().is_none());
        cal.push(5e-6, 1, 42u64);
        assert_eq!(cal.pop().unwrap().2, 42);
    }
}
