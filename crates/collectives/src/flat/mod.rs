//! Conventional flat Allgather algorithms (paper Section 2.2).
//!
//! These treat all links as homogeneous — no intra/inter-node distinction —
//! which is exactly the deficiency the paper's Figure 2 demonstrates. They
//! serve both as baselines and as building blocks (the library surrogates
//! pick among them by message size).

mod bruck;
mod direct_spread;
mod recursive_doubling;
mod ring;

pub use bruck::build_bruck;
pub(crate) use bruck::emit_bruck;
pub use direct_spread::build_direct_spread;
pub(crate) use direct_spread::emit_direct_spread;
pub use recursive_doubling::build_recursive_doubling;
pub(crate) use recursive_doubling::emit_recursive_doubling;
pub use ring::build_ring;
pub(crate) use ring::emit_ring;

#[cfg(test)]
pub(crate) mod testutil {
    use crate::ctx::Built;
    use mha_exec::{verify_allgather, Mode};

    /// Full validation battery for an Allgather build: structural checks,
    /// race-freedom, and semantic verification in both execution modes.
    pub fn assert_allgather_correct(built: &Built) {
        mha_sched::validate(&built.sched, Some(2)).unwrap();
        let races = mha_sched::check_races(&built.sched);
        assert!(races.is_empty(), "races: {races:?}");
        verify_allgather(
            &built.sched,
            &built.send,
            &built.recv,
            built.msg,
            Mode::Single,
        )
        .unwrap();
        verify_allgather(
            &built.sched,
            &built.send,
            &built.recv,
            built.msg,
            Mode::Threaded(4),
        )
        .unwrap();
    }
}
