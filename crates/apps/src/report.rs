//! Plain-text table/CSV formatting for the benchmark binaries — mirrors
//! the OSU micro-benchmark output style the paper's figures are drawn
//! from.

/// A results table: one row per sweep point, one value column per
/// contestant.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    row_header: String,
    columns: Vec<String>,
    rows: Vec<(String, Vec<f64>)>,
}

impl Table {
    /// Starts a table titled `title`, whose first column is `row_header`
    /// and whose value columns are `columns`.
    pub fn new(
        title: impl Into<String>,
        row_header: impl Into<String>,
        columns: Vec<String>,
    ) -> Self {
        Table {
            title: title.into(),
            row_header: row_header.into(),
            columns,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if `values` does not match the column count.
    pub fn push(&mut self, label: impl Into<String>, values: Vec<f64>) {
        assert_eq!(values.len(), self.columns.len(), "column count mismatch");
        self.rows.push((label.into(), values));
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Raw access to the rows.
    pub fn rows(&self) -> &[(String, Vec<f64>)] {
        &self.rows
    }

    /// Renders an aligned text table.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        let mut widths: Vec<usize> = Vec::new();
        widths.push(
            self.rows
                .iter()
                .map(|(l, _)| l.len())
                .chain([self.row_header.len()])
                .max()
                .unwrap_or(8),
        );
        for (c, col) in self.columns.iter().enumerate() {
            let w = self
                .rows
                .iter()
                .map(|(_, v)| format!("{:.2}", v[c]).len())
                .chain([col.len()])
                .max()
                .unwrap_or(8);
            widths.push(w);
        }
        let _ = write!(out, "{:>w$}", self.row_header, w = widths[0]);
        for (c, col) in self.columns.iter().enumerate() {
            let _ = write!(out, "  {:>w$}", col, w = widths[c + 1]);
        }
        out.push('\n');
        for (label, values) in &self.rows {
            let _ = write!(out, "{:>w$}", label, w = widths[0]);
            for (c, v) in values.iter().enumerate() {
                let _ = write!(out, "  {:>w$.2}", v, w = widths[c + 1]);
            }
            out.push('\n');
        }
        out
    }

    /// Renders CSV (`row_header,col1,col2,…`).
    pub fn to_csv(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(out, "{}", self.row_header);
        for col in &self.columns {
            let _ = write!(out, ",{col}");
        }
        out.push('\n');
        for (label, values) in &self.rows {
            let _ = write!(out, "{label}");
            for v in values {
                let _ = write!(out, ",{v:.4}");
            }
            out.push('\n');
        }
        out
    }
}

/// Formats a byte count the way OSU tables do (`256`, `16K`, `2M`).
pub fn fmt_bytes(n: usize) -> String {
    if n >= 1 << 20 && n % (1 << 20) == 0 {
        format!("{}M", n >> 20)
    } else if n >= 1 << 10 && n % (1 << 10) == 0 {
        format!("{}K", n >> 10)
    } else {
        n.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(
            "Fig X",
            "size",
            vec!["HPC-X".into(), "MHA".into()],
        );
        t.push("256", vec![10.5, 5.25]);
        t.push("16K", vec![100.0, 42.0]);
        t
    }

    #[test]
    fn text_table_aligns_and_includes_everything() {
        let txt = sample().to_text();
        assert!(txt.contains("# Fig X"));
        assert!(txt.contains("HPC-X"));
        assert!(txt.contains("5.25"));
        assert_eq!(txt.lines().count(), 4);
    }

    #[test]
    fn csv_round_trips_values() {
        let csv = sample().to_csv();
        let lines: Vec<_> = csv.lines().collect();
        assert_eq!(lines[0], "size,HPC-X,MHA");
        assert!(lines[1].starts_with("256,10.5"));
    }

    #[test]
    fn byte_formatting_matches_osu_style() {
        assert_eq!(fmt_bytes(256), "256");
        assert_eq!(fmt_bytes(16 * 1024), "16K");
        assert_eq!(fmt_bytes(2 << 20), "2M");
        assert_eq!(fmt_bytes(1500), "1500");
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn wrong_arity_rejected() {
        sample().push("x", vec![1.0]);
    }

    #[test]
    fn len_and_empty() {
        assert_eq!(sample().len(), 2);
        assert!(!sample().is_empty());
    }
}
