//! Failure injection and error-path coverage across the stack: bad
//! configurations must be rejected with precise errors, never mis-executed.

use mha::collectives::mha::{build_mha_inter, build_mha_intra, InterAlgo, MhaInterConfig, Offload};
use mha::collectives::{build_ring_allreduce, AllgatherAlgo, AllgatherPhase, BuildError};
use mha::exec::ExecError;
use mha::sched::{Channel, Loc, ProcGrid, RankId, ScheduleBuilder, ValidateError};
use mha::simnet::{ClusterSpec, SimError, Simulator};

#[test]
fn rd_variants_reject_non_powers_of_two() {
    let spec = ClusterSpec::thor();
    assert!(matches!(
        AllgatherAlgo::RecursiveDoubling.build(ProcGrid::new(3, 2), 8, &spec),
        Err(BuildError::RequiresPowerOfTwo {
            what: "ranks",
            got: 6
        })
    ));
    assert!(matches!(
        build_mha_inter(
            ProcGrid::new(5, 2),
            8,
            MhaInterConfig {
                inter: InterAlgo::RecursiveDoubling,
                offload: Offload::Auto,
                overlap: true,
            },
            &spec
        ),
        Err(BuildError::RequiresPowerOfTwo {
            what: "nodes",
            got: 5
        })
    ));
    assert!(matches!(
        AllgatherAlgo::SingleLeader.build(ProcGrid::new(6, 2), 8, &spec),
        Err(BuildError::RequiresPowerOfTwo { .. })
    ));
}

#[test]
fn multi_leader_rejects_bad_group_counts() {
    let spec = ClusterSpec::thor();
    for groups in [0u32, 3, 7] {
        let err = AllgatherAlgo::MultiLeader { groups }
            .build(ProcGrid::new(2, 4), 8, &spec)
            .unwrap_err();
        assert!(matches!(err, BuildError::BadParameter(_)), "{groups}");
    }
}

#[test]
fn mha_intra_rejects_multi_node_grids() {
    let spec = ClusterSpec::thor();
    assert!(matches!(
        build_mha_intra(ProcGrid::new(2, 4), 8, Offload::Auto, &spec),
        Err(BuildError::BadParameter(_))
    ));
}

#[test]
fn allreduce_rejects_indivisible_vectors() {
    let spec = ClusterSpec::thor();
    assert!(matches!(
        build_ring_allreduce(ProcGrid::new(2, 3), 100, AllgatherPhase::FlatRing, &spec),
        Err(BuildError::IndivisibleVector {
            elems: 100,
            ranks: 6
        })
    ));
}

#[test]
fn simulator_rejects_overloaded_nodes_and_bad_rails() {
    let sim = Simulator::new(ClusterSpec::thor()).unwrap();
    // Too many ranks per node for the 32-core Thor nodes.
    let grid = ProcGrid::single_node(33);
    let mut b = ScheduleBuilder::new(grid, "too-big");
    b.compute(RankId(0), 1, &[], 0);
    assert!(matches!(
        sim.run(&b.finish().freeze()),
        Err(SimError::PpnExceedsCores { ppn: 33, cores: 32 })
    ));
    // Rail index beyond the cluster's two HCAs.
    let grid = ProcGrid::new(2, 1);
    let mut b = ScheduleBuilder::new(grid, "bad-rail");
    let s = b.private_buf(RankId(0), 8, "s");
    let d = b.private_buf(RankId(1), 8, "d");
    b.transfer(
        RankId(0),
        RankId(1),
        Loc::new(s, 0),
        Loc::new(d, 0),
        8,
        Channel::Rail(2),
        &[],
        0,
    );
    assert!(matches!(
        sim.run(&b.finish().freeze()),
        Err(SimError::InvalidSchedule(ValidateError::RailOutOfRange {
            rail: 2,
            rails: 2,
            ..
        }))
    ));
}

#[test]
fn simulator_rejects_implausible_cluster_specs() {
    let mut spec = ClusterSpec::thor();
    spec.mem_bw = f64::NAN;
    assert!(matches!(
        Simulator::new(spec),
        Err(SimError::InvalidSpec(_))
    ));
    let mut spec = ClusterSpec::thor();
    spec.rail_alpha = -1e-6;
    assert!(matches!(
        Simulator::new(spec),
        Err(SimError::InvalidSpec(_))
    ));
}

#[test]
fn executors_reject_structurally_broken_schedules() {
    // CMA across nodes is illegal; both executors must refuse it rather
    // than move bytes.
    let grid = ProcGrid::new(2, 1);
    let mut b = ScheduleBuilder::new(grid, "cma-cross");
    let s = b.private_buf(RankId(0), 8, "s");
    let d = b.private_buf(RankId(1), 8, "d");
    b.transfer(
        RankId(0),
        RankId(1),
        Loc::new(s, 0),
        Loc::new(d, 0),
        8,
        Channel::Cma,
        &[],
        0,
    );
    let sch = b.finish().freeze();
    let store = mha::exec::BufferStore::new(&sch);
    assert!(matches!(
        mha::exec::run_single(&sch, &store),
        Err(ExecError::InvalidSchedule(
            ValidateError::CmaAcrossNodes { .. }
        ))
    ));
    assert!(matches!(
        mha::exec::run_threaded(&sch, &store, 2),
        Err(ExecError::InvalidSchedule(
            ValidateError::CmaAcrossNodes { .. }
        ))
    ));
    // The destination buffer must be untouched.
    assert_eq!(store.read_all(d), vec![0u8; 8]);
}

#[test]
fn race_checker_catches_a_deliberately_broken_pipeline() {
    // A "chunk-counter" pipeline with the dependency edge removed: the
    // member copies out of shm without waiting for the leader's copy-in.
    let grid = ProcGrid::new(1, 2);
    let mut b = ScheduleBuilder::new(grid, "broken-pipeline");
    let src = b.private_buf(RankId(0), 64, "src");
    let shm = b.shared_buf(mha::sched::NodeId(0), 64, "shm");
    let dst = b.private_buf(RankId(1), 64, "dst");
    b.copy(RankId(0), Loc::new(src, 0), Loc::new(shm, 0), 64, &[], 0);
    // BUG: no dependency on the copy-in.
    b.copy(RankId(1), Loc::new(shm, 0), Loc::new(dst, 0), 64, &[], 1);
    let sch = b.finish();
    assert!(
        mha::sched::validate(&sch, None).is_ok(),
        "structurally fine"
    );
    let races = mha::sched::check_races(&sch);
    assert_eq!(races.len(), 1, "the missing edge must surface as a race");
    assert_eq!(races[0].buf, shm);
}

#[test]
fn degenerate_layouts_all_work() {
    let spec = ClusterSpec::thor();
    let sim = Simulator::new(spec.clone()).unwrap();
    // One rank total; one node; one process per node across many nodes.
    for grid in [
        ProcGrid::new(1, 1),
        ProcGrid::new(1, 4),
        ProcGrid::new(4, 1),
    ] {
        for algo in [
            AllgatherAlgo::Ring,
            AllgatherAlgo::Bruck,
            AllgatherAlgo::MhaInter(MhaInterConfig::default()),
        ] {
            let built = algo.build(grid, 16, &spec).unwrap();
            mha::exec::verify_allgather(
                &built.sched,
                &built.send,
                &built.recv,
                16,
                mha::exec::Mode::Single,
            )
            .unwrap();
            sim.run(&built.sched).unwrap();
        }
    }
}

#[test]
fn zero_rail_offload_equals_plain_direct_spread() {
    let spec = ClusterSpec::thor();
    let grid = ProcGrid::single_node(4);
    let mha0 = build_mha_intra(grid, 64, Offload::Fixed(0), &spec).unwrap();
    let ds = AllgatherAlgo::DirectSpread.build(grid, 64, &spec).unwrap();
    assert_eq!(mha0.sched.stats().rail_transfers, 0);
    assert_eq!(
        mha0.sched.stats().cma_transfers,
        ds.sched.stats().cma_transfers
    );
}
