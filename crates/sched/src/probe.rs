//! Pluggable observability for schedule execution.
//!
//! Every interpreter of a [`FrozenSchedule`] — the discrete-event simulator
//! and both real executors — narrates its run through the [`Probe`] trait:
//! op lifecycle spans (`ready`/`start`/`end`), fluid flow-rate changes,
//! water-filling recomputations and end-of-run resource totals. Sinks decide
//! what to keep:
//!
//! * [`NullProbe`] — keeps nothing (the default; all trait methods are
//!   no-op defaults, so custom sinks override only what they need);
//! * [`JsonlProbe`] — streams every event as one JSON object per line, for
//!   offline analysis (format documented on the type and in `DESIGN.md`);
//! * [`SummaryProbe`] — folds the stream into a [`RunSummary`]: per-resource
//!   utilization plus the network/CPU overlap fraction that quantifies the
//!   paper's Fig. 7 compute–communication overlap argument.
//!
//! The ASCII timeline sink (`TraceBuilder`) lives in `mha-simnet::trace`
//! because it renders against the simulator's lane model.

use std::io::{self, Write};

use crate::frozen::FrozenSchedule;

/// Observer of a single schedule execution.
///
/// All methods default to no-ops. Times are seconds from the start of the
/// run — simulated time for the simulator, wall-clock for the executors.
/// Ops are identified by their dense index; resolve metadata through the
/// [`FrozenSchedule`] handed to [`Probe::begin_run`].
pub trait Probe {
    /// The run is starting. `backend` identifies the interpreter
    /// (`"simnet"`, `"exec-single"`, `"exec-threaded"`).
    fn begin_run(&mut self, fs: &FrozenSchedule, backend: &'static str) {
        let _ = (fs, backend);
    }

    /// All dependencies of `op` are satisfied.
    fn op_ready(&mut self, op: u32, t: f64) {
        let _ = (op, t);
    }

    /// `op` began executing (startup latency elapsed, flows created).
    fn op_start(&mut self, op: u32, t: f64) {
        let _ = (op, t);
    }

    /// `op` finished.
    fn op_end(&mut self, op: u32, t: f64) {
        let _ = (op, t);
    }

    /// Whether this sink consumes the flow-lifecycle events
    /// ([`Probe::resource_decl`], [`Probe::flow_begin`], [`Probe::flow_end`]).
    ///
    /// Emitting those events costs the interpreter a small allocation per
    /// flow, so backends skip them unless a sink opts in. [`Probe::flow_rate`]
    /// is always delivered regardless.
    fn wants_flows(&self) -> bool {
        false
    }

    /// Declares one backend resource before any flow events: dense `index`,
    /// human-readable `label` (e.g. `tx(n0,h1)`) and `capacity` in bytes/s.
    /// Emitted after [`Probe::begin_run`], in index order, only when
    /// [`Probe::wants_flows`] is `true`.
    fn resource_decl(&mut self, index: u32, label: &str, capacity: f64) {
        let _ = (index, label, capacity);
    }

    /// A fluid flow of `op` was created: it will drain `bytes` at up to
    /// `cap` bytes/s, consuming `weight × rate` of each `(resource, weight)`
    /// pair while active. Flow indices are recycled after [`Probe::flow_end`].
    /// Only emitted when [`Probe::wants_flows`] is `true`.
    fn flow_begin(
        &mut self,
        op: u32,
        flow: u32,
        resources: &[(u32, f64)],
        cap: f64,
        bytes: f64,
        t: f64,
    ) {
        let _ = (op, flow, resources, cap, bytes, t);
    }

    /// Flow `flow` of `op` drained completely. Only emitted when
    /// [`Probe::wants_flows`] is `true`.
    fn flow_end(&mut self, op: u32, flow: u32, t: f64) {
        let _ = (op, flow, t);
    }

    /// Fluid flow `flow` belonging to `op` was (re)assigned `rate` bytes/s.
    fn flow_rate(&mut self, op: u32, flow: u32, rate: f64, t: f64) {
        let _ = (op, flow, rate, t);
    }

    /// Resource `res`'s effective capacity changed to `capacity` bytes/s at
    /// `t` — emitted by the simulator at fault boundaries (rail derate,
    /// link down/up). `capacity == 0.0` means the resource is down.
    fn resource_capacity(&mut self, res: u32, capacity: f64, t: f64) {
        let _ = (res, capacity, t);
    }

    /// Flow `flow` of `op` was re-issued onto a different resource set at
    /// `t` (retry after a rail fault). The flow keeps its identity and its
    /// remaining bytes; only its `(resource, weight)` pairs change.
    fn flow_resources(&mut self, op: u32, flow: u32, resources: &[(u32, f64)], t: f64) {
        let _ = (op, flow, resources, t);
    }

    /// The max-min water-filler recomputed a connected component of
    /// `flows` flows; `touched` of the component's resources had their
    /// bottleneck saturation level actually move. A truly incremental
    /// update reports `touched` well below the component's resource count
    /// — this is the observable distinguishing it from a full recompute.
    fn waterfill(&mut self, t: f64, flows: usize, touched: usize) {
        let _ = (t, flows, touched);
    }

    /// End-of-run total for one resource: `bytes` moved through a resource
    /// of `capacity` bytes/s.
    fn resource_sample(&mut self, label: &str, bytes: f64, capacity: f64) {
        let _ = (label, bytes, capacity);
    }

    /// The run finished after `makespan` seconds.
    fn end_run(&mut self, makespan: f64) {
        let _ = makespan;
    }
}

/// A probe that discards everything.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullProbe;

impl Probe for NullProbe {}

// ---------------------------------------------------------------------------
// Interval arithmetic shared by summary sinks and metrics.
// ---------------------------------------------------------------------------

/// Total length of the union of (possibly overlapping) `[start, end)`
/// intervals. `O(n log n)`; intervals need not be sorted.
pub fn union_length(intervals: &[(f64, f64)]) -> f64 {
    if intervals.is_empty() {
        return 0.0;
    }
    let mut iv: Vec<(f64, f64)> = intervals.iter().filter(|(s, e)| e > s).copied().collect();
    iv.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut total = 0.0;
    let mut cur: Option<(f64, f64)> = None;
    for (s, e) in iv {
        match cur {
            None => cur = Some((s, e)),
            Some((cs, ce)) => {
                if s <= ce {
                    cur = Some((cs, ce.max(e)));
                } else {
                    total += ce - cs;
                    cur = Some((s, e));
                }
            }
        }
    }
    if let Some((cs, ce)) = cur {
        total += ce - cs;
    }
    total
}

/// Total length of the intersection of the unions of two interval sets:
/// `|A ∩ B| = |A| + |B| − |A ∪ B|`.
pub fn intersection_length(a: &[(f64, f64)], b: &[(f64, f64)]) -> f64 {
    let mut all = a.to_vec();
    all.extend_from_slice(b);
    (union_length(a) + union_length(b) - union_length(&all)).max(0.0)
}

// ---------------------------------------------------------------------------
// JSONL sink
// ---------------------------------------------------------------------------

/// Streams the probe event stream as JSON Lines.
///
/// One object per line. The stream opens with a `begin` record and one `op`
/// record per op (static metadata), then carries dynamic events in order:
///
/// ```text
/// {"ev":"begin","backend":"simnet","schedule":"ring","ops":12,"edges":14}
/// {"ev":"op","op":0,"kind":"rails","bytes":4096,"step":0,"rank":0,"label":"r0->r4"}
/// {"ev":"res","res":0,"label":"cpu(r0)","capacity":1.3e10}
/// {"ev":"ready","op":0,"t":0.0}
/// {"ev":"start","op":0,"t":1.9e-6}
/// {"ev":"flow_begin","op":0,"flow":0,"cap":1.55e10,"bytes":4096.0,"resources":[[4,1.0],[6,1.0]],"t":1.9e-6}
/// {"ev":"rate","op":0,"flow":0,"rate":1.55e10,"t":1.9e-6}
/// {"ev":"waterfill","t":1.9e-6,"flows":2}
/// {"ev":"flow_end","op":0,"flow":0,"t":4.54e-6}
/// {"ev":"end","op":0,"t":4.54e-6}
/// {"ev":"resource","label":"tx(n0,h0)","bytes":4096.0,"capacity":1.55e10}
/// {"ev":"end_run","makespan":4.54e-6}
/// ```
///
/// Times are seconds; rates and capacities bytes/s. `step` is `null` for
/// untagged ops. No external JSON dependency is used: fields are numbers,
/// fixed keys and escaped strings only.
#[derive(Debug)]
pub struct JsonlProbe<W: Write> {
    w: W,
    err: Option<io::Error>,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl<W: Write> JsonlProbe<W> {
    /// A sink writing to `w`.
    pub fn new(w: W) -> Self {
        JsonlProbe { w, err: None }
    }

    fn line(&mut self, s: String) {
        if self.err.is_none() {
            if let Err(e) = writeln!(self.w, "{s}") {
                self.err = Some(e);
            }
        }
    }

    /// Finishes the stream, returning the writer or the first I/O error.
    pub fn into_inner(mut self) -> io::Result<W> {
        match self.err.take() {
            Some(e) => Err(e),
            None => {
                self.w.flush()?;
                Ok(self.w)
            }
        }
    }
}

impl<W: Write> Probe for JsonlProbe<W> {
    fn begin_run(&mut self, fs: &FrozenSchedule, backend: &'static str) {
        self.line(format!(
            "{{\"ev\":\"begin\",\"backend\":\"{}\",\"schedule\":\"{}\",\"ops\":{},\"edges\":{}}}",
            json_escape(backend),
            json_escape(fs.name()),
            fs.n_ops(),
            fs.n_edges()
        ));
        for (i, row) in fs.rows().iter().enumerate() {
            let step = match row.step {
                Some(s) => s.to_string(),
                None => "null".into(),
            };
            self.line(format!(
                "{{\"ev\":\"op\",\"op\":{},\"kind\":\"{}\",\"bytes\":{},\"step\":{},\"rank\":{},\"label\":\"{}\"}}",
                i,
                row.class.name(),
                row.bytes,
                step,
                row.rank,
                json_escape(&fs.ops()[i].label)
            ));
        }
    }

    fn op_ready(&mut self, op: u32, t: f64) {
        self.line(format!("{{\"ev\":\"ready\",\"op\":{op},\"t\":{t:e}}}"));
    }

    fn op_start(&mut self, op: u32, t: f64) {
        self.line(format!("{{\"ev\":\"start\",\"op\":{op},\"t\":{t:e}}}"));
    }

    fn op_end(&mut self, op: u32, t: f64) {
        self.line(format!("{{\"ev\":\"end\",\"op\":{op},\"t\":{t:e}}}"));
    }

    fn wants_flows(&self) -> bool {
        true
    }

    fn resource_decl(&mut self, index: u32, label: &str, capacity: f64) {
        self.line(format!(
            "{{\"ev\":\"res\",\"res\":{index},\"label\":\"{}\",\"capacity\":{capacity:e}}}",
            json_escape(label)
        ));
    }

    fn flow_begin(
        &mut self,
        op: u32,
        flow: u32,
        resources: &[(u32, f64)],
        cap: f64,
        bytes: f64,
        t: f64,
    ) {
        let res: Vec<String> = resources
            .iter()
            .map(|(r, w)| format!("[{r},{w:e}]"))
            .collect();
        self.line(format!(
            "{{\"ev\":\"flow_begin\",\"op\":{op},\"flow\":{flow},\"cap\":{cap:e},\"bytes\":{bytes:e},\"resources\":[{}],\"t\":{t:e}}}",
            res.join(",")
        ));
    }

    fn flow_end(&mut self, op: u32, flow: u32, t: f64) {
        self.line(format!(
            "{{\"ev\":\"flow_end\",\"op\":{op},\"flow\":{flow},\"t\":{t:e}}}"
        ));
    }

    fn flow_rate(&mut self, op: u32, flow: u32, rate: f64, t: f64) {
        self.line(format!(
            "{{\"ev\":\"rate\",\"op\":{op},\"flow\":{flow},\"rate\":{rate:e},\"t\":{t:e}}}"
        ));
    }

    fn resource_capacity(&mut self, res: u32, capacity: f64, t: f64) {
        self.line(format!(
            "{{\"ev\":\"capacity\",\"res\":{res},\"capacity\":{capacity:e},\"t\":{t:e}}}"
        ));
    }

    fn flow_resources(&mut self, op: u32, flow: u32, resources: &[(u32, f64)], t: f64) {
        let res: Vec<String> = resources
            .iter()
            .map(|(r, w)| format!("[{r},{w:e}]"))
            .collect();
        self.line(format!(
            "{{\"ev\":\"flow_reroute\",\"op\":{op},\"flow\":{flow},\"resources\":[{}],\"t\":{t:e}}}",
            res.join(",")
        ));
    }

    fn waterfill(&mut self, t: f64, flows: usize, touched: usize) {
        self.line(format!(
            "{{\"ev\":\"waterfill\",\"t\":{t:e},\"flows\":{flows},\"touched\":{touched}}}"
        ));
    }

    fn resource_sample(&mut self, label: &str, bytes: f64, capacity: f64) {
        self.line(format!(
            "{{\"ev\":\"resource\",\"label\":\"{}\",\"bytes\":{bytes:e},\"capacity\":{capacity:e}}}",
            json_escape(label)
        ));
    }

    fn end_run(&mut self, makespan: f64) {
        self.line(format!("{{\"ev\":\"end_run\",\"makespan\":{makespan:e}}}"));
    }
}

// ---------------------------------------------------------------------------
// Summary sink
// ---------------------------------------------------------------------------

/// Utilization of one modelled resource over a run.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceUtil {
    /// Resource label from the simulator's resource map, e.g. `tx(n0,h1)`.
    pub label: String,
    /// Total bytes moved through the resource.
    pub bytes: f64,
    /// Capacity in bytes/s.
    pub capacity: f64,
    /// `bytes / (capacity * makespan)` — fraction of the run the resource
    /// was busy, under the fluid model.
    pub utilization: f64,
}

/// Digest of one run: busy times, network/CPU overlap and resource totals.
#[derive(Debug, Clone, Default)]
pub struct RunSummary {
    /// Which interpreter produced the run.
    pub backend: &'static str,
    /// Schedule name.
    pub schedule: String,
    /// Number of ops executed.
    pub ops: usize,
    /// Total run time in seconds.
    pub makespan: f64,
    /// Union length of network-op (`rail`/`rails`) spans, seconds.
    pub net_busy: f64,
    /// Union length of CPU-op (`cma`/`copy`/`reduce`/`compute`) spans, seconds.
    pub cpu_busy: f64,
    /// Length of `net ∩ cpu`, seconds — time both lanes progressed at once.
    pub net_cpu_overlap: f64,
    /// Per-resource utilization, in resource-map order.
    pub resources: Vec<ResourceUtil>,
    /// Water-filling component recomputations performed.
    pub waterfill_recomputes: u64,
    /// Resources whose bottleneck saturation level moved, summed over all
    /// recomputations — the incremental allocator's actual work.
    pub waterfill_touched: u64,
    /// Flow rate (re)assignments performed.
    pub rate_changes: u64,
}

impl RunSummary {
    /// Fraction of network-busy time during which CPU work also progressed:
    /// `|net ∩ cpu| / |net|`. This is the overlap metric behind the paper's
    /// Fig. 7 — higher means communication hides more of the copy cost.
    /// Returns 0 when the run had no network time.
    pub fn overlap_fraction(&self) -> f64 {
        if self.net_busy > 0.0 {
            self.net_cpu_overlap / self.net_busy
        } else {
            0.0
        }
    }
}

/// Folds the probe stream into a [`RunSummary`].
#[derive(Debug, Default)]
pub struct SummaryProbe {
    backend: &'static str,
    schedule: String,
    is_net: Vec<bool>,
    start: Vec<f64>,
    net_spans: Vec<(f64, f64)>,
    cpu_spans: Vec<(f64, f64)>,
    resources: Vec<ResourceUtil>,
    waterfill_recomputes: u64,
    waterfill_touched: u64,
    rate_changes: u64,
    makespan: f64,
}

impl SummaryProbe {
    /// A fresh, empty summary sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the sink, producing the run digest.
    pub fn finish(mut self) -> RunSummary {
        let makespan = self.makespan;
        for r in &mut self.resources {
            let denom = r.capacity * makespan;
            r.utilization = if denom > 0.0 { r.bytes / denom } else { 0.0 };
        }
        RunSummary {
            backend: self.backend,
            schedule: self.schedule,
            ops: self.is_net.len(),
            makespan,
            net_busy: union_length(&self.net_spans),
            cpu_busy: union_length(&self.cpu_spans),
            net_cpu_overlap: intersection_length(&self.net_spans, &self.cpu_spans),
            resources: self.resources,
            waterfill_recomputes: self.waterfill_recomputes,
            waterfill_touched: self.waterfill_touched,
            rate_changes: self.rate_changes,
        }
    }
}

impl Probe for SummaryProbe {
    fn begin_run(&mut self, fs: &FrozenSchedule, backend: &'static str) {
        self.backend = backend;
        self.schedule = fs.name().to_string();
        self.is_net = fs.rows().iter().map(|r| r.class.is_network()).collect();
        // Compute ops burn CPU but move no data; they still count as CPU
        // lane time for the overlap metric (matches OpClass semantics).
        self.start = vec![f64::NAN; fs.n_ops()];
    }

    fn op_start(&mut self, op: u32, t: f64) {
        self.start[op as usize] = t;
    }

    fn op_end(&mut self, op: u32, t: f64) {
        let s = self.start[op as usize];
        if !s.is_nan() {
            let span = (s, t);
            if self.is_net[op as usize] {
                self.net_spans.push(span);
            } else {
                self.cpu_spans.push(span);
            }
        }
    }

    fn flow_rate(&mut self, _op: u32, _flow: u32, _rate: f64, _t: f64) {
        self.rate_changes += 1;
    }

    fn waterfill(&mut self, _t: f64, _flows: usize, touched: usize) {
        self.waterfill_recomputes += 1;
        self.waterfill_touched += touched as u64;
    }

    fn resource_sample(&mut self, label: &str, bytes: f64, capacity: f64) {
        self.resources.push(ResourceUtil {
            label: label.to_string(),
            bytes,
            capacity,
            utilization: 0.0,
        });
    }

    fn end_run(&mut self, makespan: f64) {
        self.makespan = makespan;
    }
}

/// Broadcasts each event to two probes, letting callers combine sinks
/// (e.g. a [`SummaryProbe`] and a [`JsonlProbe`]) in one run.
#[derive(Debug)]
pub struct Tee<'a, A: Probe + ?Sized, B: Probe + ?Sized>(pub &'a mut A, pub &'a mut B);

impl<A: Probe + ?Sized, B: Probe + ?Sized> Probe for Tee<'_, A, B> {
    fn begin_run(&mut self, fs: &FrozenSchedule, backend: &'static str) {
        self.0.begin_run(fs, backend);
        self.1.begin_run(fs, backend);
    }
    fn op_ready(&mut self, op: u32, t: f64) {
        self.0.op_ready(op, t);
        self.1.op_ready(op, t);
    }
    fn op_start(&mut self, op: u32, t: f64) {
        self.0.op_start(op, t);
        self.1.op_start(op, t);
    }
    fn op_end(&mut self, op: u32, t: f64) {
        self.0.op_end(op, t);
        self.1.op_end(op, t);
    }
    fn wants_flows(&self) -> bool {
        self.0.wants_flows() || self.1.wants_flows()
    }
    fn resource_decl(&mut self, index: u32, label: &str, capacity: f64) {
        self.0.resource_decl(index, label, capacity);
        self.1.resource_decl(index, label, capacity);
    }
    fn flow_begin(
        &mut self,
        op: u32,
        flow: u32,
        resources: &[(u32, f64)],
        cap: f64,
        bytes: f64,
        t: f64,
    ) {
        self.0.flow_begin(op, flow, resources, cap, bytes, t);
        self.1.flow_begin(op, flow, resources, cap, bytes, t);
    }
    fn flow_end(&mut self, op: u32, flow: u32, t: f64) {
        self.0.flow_end(op, flow, t);
        self.1.flow_end(op, flow, t);
    }
    fn flow_rate(&mut self, op: u32, flow: u32, rate: f64, t: f64) {
        self.0.flow_rate(op, flow, rate, t);
        self.1.flow_rate(op, flow, rate, t);
    }
    fn resource_capacity(&mut self, res: u32, capacity: f64, t: f64) {
        self.0.resource_capacity(res, capacity, t);
        self.1.resource_capacity(res, capacity, t);
    }
    fn flow_resources(&mut self, op: u32, flow: u32, resources: &[(u32, f64)], t: f64) {
        self.0.flow_resources(op, flow, resources, t);
        self.1.flow_resources(op, flow, resources, t);
    }
    fn waterfill(&mut self, t: f64, flows: usize, touched: usize) {
        self.0.waterfill(t, flows, touched);
        self.1.waterfill(t, flows, touched);
    }
    fn resource_sample(&mut self, label: &str, bytes: f64, capacity: f64) {
        self.0.resource_sample(label, bytes, capacity);
        self.1.resource_sample(label, bytes, capacity);
    }
    fn end_run(&mut self, makespan: f64) {
        self.0.end_run(makespan);
        self.1.end_run(makespan);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::Loc;
    use crate::builder::ScheduleBuilder;
    use crate::grid::ProcGrid;
    use crate::ids::RankId;
    use crate::op::Channel;

    fn tiny() -> FrozenSchedule {
        let mut b = ScheduleBuilder::new(ProcGrid::new(2, 1), "tiny");
        let s = b.private_buf(RankId(0), 64, "s");
        let d = b.private_buf(RankId(1), 64, "d");
        let t = b.transfer(
            RankId(0),
            RankId(1),
            Loc::new(s, 0),
            Loc::new(d, 0),
            64,
            Channel::AllRails,
            &[],
            0,
        );
        b.copy(RankId(1), Loc::new(d, 0), Loc::new(d, 0), 64, &[t], 1);
        b.finish().freeze()
    }

    #[test]
    fn union_merges_overlaps() {
        assert_eq!(union_length(&[]), 0.0);
        assert_eq!(union_length(&[(0.0, 1.0), (0.5, 2.0)]), 2.0);
        assert_eq!(union_length(&[(0.0, 1.0), (2.0, 3.0)]), 2.0);
        assert_eq!(union_length(&[(1.0, 1.0), (2.0, 1.0)]), 0.0); // degenerate
    }

    #[test]
    fn intersection_is_symmetric_difference_of_unions() {
        let a = [(0.0, 2.0)];
        let b = [(1.0, 3.0)];
        assert!((intersection_length(&a, &b) - 1.0).abs() < 1e-12);
        assert!((intersection_length(&b, &a) - 1.0).abs() < 1e-12);
        assert_eq!(intersection_length(&a, &[]), 0.0);
    }

    #[test]
    fn summary_probe_computes_overlap() {
        let fs = tiny();
        let mut p = SummaryProbe::new();
        p.begin_run(&fs, "test");
        p.op_start(0, 0.0);
        p.op_end(0, 2.0); // net busy [0,2)
        p.op_start(1, 1.0);
        p.op_end(1, 3.0); // cpu busy [1,3)
        p.flow_rate(0, 0, 1e9, 0.0);
        p.waterfill(0.0, 1, 2);
        p.resource_sample("tx(n0,h0)", 64.0, 32.0);
        p.end_run(3.0);
        let s = p.finish();
        assert_eq!(s.backend, "test");
        assert_eq!(s.schedule, "tiny");
        assert_eq!(s.ops, 2);
        assert_eq!(s.makespan, 3.0);
        assert_eq!(s.net_busy, 2.0);
        assert_eq!(s.cpu_busy, 2.0);
        assert!((s.net_cpu_overlap - 1.0).abs() < 1e-12);
        assert!((s.overlap_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(s.rate_changes, 1);
        assert_eq!(s.waterfill_recomputes, 1);
        assert_eq!(s.waterfill_touched, 2);
        assert_eq!(s.resources.len(), 1);
        // 64 bytes over capacity 32 B/s in 3 s -> 2/3 busy.
        assert!((s.resources[0].utilization - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn overlap_fraction_zero_without_network() {
        let s = RunSummary::default();
        assert_eq!(s.overlap_fraction(), 0.0);
    }

    #[test]
    fn jsonl_probe_emits_one_object_per_line() {
        let fs = tiny();
        let mut p = JsonlProbe::new(Vec::<u8>::new());
        p.begin_run(&fs, "simnet");
        p.op_ready(0, 0.0);
        p.op_start(0, 1e-6);
        p.flow_rate(0, 0, 2.5e10, 1e-6);
        p.waterfill(1e-6, 1, 1);
        p.op_end(0, 2e-6);
        p.resource_sample("tx(n0,h0)", 64.0, 2.5e10);
        p.end_run(2e-6);
        let out = String::from_utf8(p.into_inner().unwrap()).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        // begin + 2 op-meta + 5 events + resource + end_run
        assert_eq!(lines.len(), 10);
        assert!(lines[0].contains("\"ev\":\"begin\""));
        assert!(lines[0].contains("\"backend\":\"simnet\""));
        assert!(lines[1].contains("\"kind\":\"rails\""));
        assert!(lines[2].contains("\"kind\":\"copy\""));
        assert!(lines[2].contains("\"step\":1"));
        assert!(lines.last().unwrap().contains("\"ev\":\"end_run\""));
        for l in &lines {
            assert!(l.starts_with('{') && l.ends_with('}'));
        }
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn tee_duplicates_events() {
        let fs = tiny();
        let mut a = SummaryProbe::new();
        let mut b = SummaryProbe::new();
        {
            let mut tee = Tee(&mut a, &mut b);
            tee.begin_run(&fs, "test");
            tee.op_ready(0, 0.0);
            tee.op_start(0, 0.0);
            tee.op_end(0, 1.0);
            tee.op_start(1, 1.0);
            tee.op_end(1, 2.0);
            tee.flow_rate(0, 0, 1.0, 0.0);
            tee.waterfill(0.0, 2, 1);
            tee.resource_sample("cpu(r0)", 1.0, 1.0);
            tee.end_run(2.0);
        }
        let (sa, sb) = (a.finish(), b.finish());
        assert_eq!(sa.makespan, sb.makespan);
        assert_eq!(sa.net_busy, sb.net_busy);
        assert_eq!(sa.rate_changes, sb.rate_changes);
        assert_eq!(sa.resources.len(), sb.resources.len());
    }
}
