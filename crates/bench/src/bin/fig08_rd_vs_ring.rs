//! Figure 8: Ring vs Recursive Doubling in the inter-leader exchange,
//! 16 and 32 nodes × 32 PPN.

use mha_apps::report::{fmt_bytes, Table};
use mha_collectives::mha::{build_mha_inter, InterAlgo, MhaInterConfig, Offload};
use mha_sched::ProcGrid;
use mha_simnet::{size_sweep, ClusterSpec, Simulator};

fn main() {
    mha_bench::apply_check_flag();
    let spec = ClusterSpec::thor();
    let sim = Simulator::new(spec.clone()).unwrap();
    for nodes in [16u32, 32] {
        let grid = ProcGrid::new(nodes, 32);
        let mut t = Table::new(
            format!("Figure 8: RD vs Ring in phase 2, {nodes} nodes x 32 PPN"),
            "msg_bytes",
            vec!["RD_us".into(), "Ring_us".into()],
        );
        for msg in size_sweep(4, 1 << 20) {
            let mut row = Vec::new();
            for algo in [InterAlgo::RecursiveDoubling, InterAlgo::Ring] {
                let cfg = MhaInterConfig {
                    inter: algo,
                    offload: Offload::Auto,
                    overlap: true,
                };
                let built = build_mha_inter(grid, msg, cfg, &spec).unwrap();
                row.push(sim.run(&built.sched).unwrap().latency_us());
            }
            t.push(fmt_bytes(msg), row);
        }
        mha_bench::emit(&t, &format!("fig08_rd_vs_ring_{nodes}n"));
    }
    let cfg = MhaInterConfig {
        inter: InterAlgo::RecursiveDoubling,
        offload: Offload::Auto,
        overlap: true,
    };
    let built = build_mha_inter(ProcGrid::new(16, 32), 64 * 1024, cfg, &spec).unwrap();
    mha_bench::emit_run_summary(&sim, &built.sched, "fig08_rd_vs_ring");
}
