//! Process grid: the mapping between global ranks and compute nodes.
//!
//! The paper evaluates block-mapped layouts (`ppn` consecutive ranks per
//! node), which is also the default of `mpirun` on the Thor cluster. All
//! hierarchy-aware algorithms (leader election, node-local sub-collectives)
//! derive their structure from this mapping.

use crate::ids::{NodeId, RankId};

/// A block-mapped process layout: `nodes × ppn` ranks, with ranks
/// `[node * ppn, (node + 1) * ppn)` placed on node `node`.
///
/// The first rank of each node is that node's *leader* in the two-level
/// designs (Section 3.2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProcGrid {
    nodes: u32,
    ppn: u32,
}

impl ProcGrid {
    /// Creates a grid of `nodes` nodes with `ppn` processes per node.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or the total rank count overflows
    /// `u32`.
    pub fn new(nodes: u32, ppn: u32) -> Self {
        assert!(nodes > 0, "a grid needs at least one node");
        assert!(ppn > 0, "a grid needs at least one process per node");
        assert!(nodes.checked_mul(ppn).is_some(), "rank count overflows u32");
        ProcGrid { nodes, ppn }
    }

    /// A single-node grid (pure intra-node communication).
    pub fn single_node(ppn: u32) -> Self {
        ProcGrid::new(1, ppn)
    }

    /// Number of nodes (`N` in the paper's notation).
    #[inline]
    pub fn nodes(&self) -> u32 {
        self.nodes
    }

    /// Processes per node (`L` in the paper's notation).
    #[inline]
    pub fn ppn(&self) -> u32 {
        self.ppn
    }

    /// Total number of ranks (`N * L`).
    #[inline]
    pub fn nranks(&self) -> u32 {
        self.nodes * self.ppn
    }

    /// The node hosting `rank`.
    #[inline]
    pub fn node_of(&self, rank: RankId) -> NodeId {
        debug_assert!(rank.0 < self.nranks(), "rank {rank} out of grid");
        NodeId(rank.0 / self.ppn)
    }

    /// The rank's index within its node (`0..ppn`).
    #[inline]
    pub fn local_index(&self, rank: RankId) -> u32 {
        rank.0 % self.ppn
    }

    /// The global rank of local process `local` on `node`.
    #[inline]
    pub fn rank_on(&self, node: NodeId, local: u32) -> RankId {
        debug_assert!(node.0 < self.nodes, "node {node} out of grid");
        debug_assert!(local < self.ppn, "local index {local} out of node");
        RankId(node.0 * self.ppn + local)
    }

    /// The leader (lowest-numbered rank) of `node`.
    #[inline]
    pub fn leader_of(&self, node: NodeId) -> RankId {
        self.rank_on(node, 0)
    }

    /// Whether `rank` is its node's leader.
    #[inline]
    pub fn is_leader(&self, rank: RankId) -> bool {
        self.local_index(rank) == 0
    }

    /// Iterator over all ranks in the grid, in rank order.
    pub fn ranks(&self) -> impl Iterator<Item = RankId> {
        (0..self.nranks()).map(RankId)
    }

    /// Iterator over all nodes.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes).map(NodeId)
    }

    /// Iterator over the ranks hosted on `node`, in local order.
    pub fn ranks_of(&self, node: NodeId) -> impl Iterator<Item = RankId> {
        let base = node.0 * self.ppn;
        (base..base + self.ppn).map(RankId)
    }

    /// Whether two ranks share a node.
    #[inline]
    pub fn same_node(&self, a: RankId, b: RankId) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// Iterator over `count` consecutive ranks starting at `first` — the
    /// shape of any group of a block-mapped topology tree (a socket, a
    /// node, a leader span).
    pub fn rank_block(&self, first: RankId, count: u32) -> impl Iterator<Item = RankId> {
        debug_assert!(
            first
                .0
                .checked_add(count)
                .is_some_and(|e| e <= self.nranks()),
            "rank block {first}+{count} out of grid"
        );
        (first.0..first.0 + count).map(RankId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_mapping_places_consecutive_ranks_together() {
        let g = ProcGrid::new(4, 8);
        assert_eq!(g.nranks(), 32);
        assert_eq!(g.node_of(RankId(0)), NodeId(0));
        assert_eq!(g.node_of(RankId(7)), NodeId(0));
        assert_eq!(g.node_of(RankId(8)), NodeId(1));
        assert_eq!(g.node_of(RankId(31)), NodeId(3));
    }

    #[test]
    fn local_index_and_rank_on_are_inverse() {
        let g = ProcGrid::new(3, 5);
        for rank in g.ranks() {
            let node = g.node_of(rank);
            let local = g.local_index(rank);
            assert_eq!(g.rank_on(node, local), rank);
        }
    }

    #[test]
    fn leaders_are_first_local_rank() {
        let g = ProcGrid::new(4, 4);
        assert_eq!(g.leader_of(NodeId(2)), RankId(8));
        assert!(g.is_leader(RankId(0)));
        assert!(g.is_leader(RankId(12)));
        assert!(!g.is_leader(RankId(13)));
    }

    #[test]
    fn ranks_of_node_enumerates_block() {
        let g = ProcGrid::new(2, 3);
        let on1: Vec<_> = g.ranks_of(NodeId(1)).collect();
        assert_eq!(on1, vec![RankId(3), RankId(4), RankId(5)]);
    }

    #[test]
    fn same_node_detects_co_location() {
        let g = ProcGrid::new(2, 2);
        assert!(g.same_node(RankId(0), RankId(1)));
        assert!(!g.same_node(RankId(1), RankId(2)));
    }

    #[test]
    fn single_node_grid() {
        let g = ProcGrid::single_node(16);
        assert_eq!(g.nodes(), 1);
        assert_eq!(g.nranks(), 16);
        assert!(g.ranks().all(|r| g.node_of(r) == NodeId(0)));
    }

    #[test]
    fn rank_block_enumerates_consecutive_ranks() {
        let g = ProcGrid::new(2, 4);
        let block: Vec<_> = g.rank_block(RankId(2), 3).collect();
        assert_eq!(block, vec![RankId(2), RankId(3), RankId(4)]);
        assert_eq!(g.rank_block(RankId(8), 0).count(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        ProcGrid::new(0, 4);
    }

    #[test]
    #[should_panic(expected = "at least one process")]
    fn zero_ppn_rejected() {
        ProcGrid::new(4, 0);
    }
}
