//! Running a traffic scenario through one shared simulator instance.
//!
//! [`run_traffic`] samples the job stream, builds each job's collective
//! schedule solo, [relocates](mha_sched::relocate_onto) it onto its
//! placement, [merges](mha_sched::merge_parts) every job into a single
//! schedule over the cluster grid, and prices that once — cross-job
//! contention emerges from the ordinary max-min water-filler, not from
//! any traffic-specific engine machinery. [`run_jobs`] is the same with
//! an explicit job list and a pluggable builder (the bench layer passes
//! a schedule-cache-backed builder; the conformance oracle passes job
//! subsets to obtain solo baselines with *identical* arrival times,
//! which is what makes bit-equality comparisons well-posed).

use std::collections::HashMap;
use std::sync::Arc;

use mha_sched::{merge_parts, probe::Probe, FrozenSchedule, MergePart, ProcGrid};
use mha_simnet::{ClusterSpec, SimResult, Simulator};

use crate::arrival::{sample_jobs, Arrival, JobSpec};
use crate::placement::PlacementPolicy;
use crate::workload::WorkloadMix;

/// A complete multi-tenant traffic scenario.
#[derive(Debug, Clone)]
pub struct TrafficSpec {
    /// The shared cluster's link/CPU/NUMA parameters.
    pub cluster: ClusterSpec,
    /// Cluster width in nodes.
    pub nodes: u32,
    /// Processes per node (every job runs at this ppn; placements are
    /// whole-node).
    pub ppn: u32,
    /// When jobs arrive.
    pub arrival: Arrival,
    /// What jobs run.
    pub mix: WorkloadMix,
    /// Where jobs land.
    pub policy: PlacementPolicy,
    /// Tenant count for open-loop arrivals (job `i` belongs to tenant
    /// `i % tenants`); closed loops use one tenant per client instead.
    pub tenants: u32,
    /// Seed of the whole scenario — arrivals, workload draws, placements.
    pub seed: u64,
}

impl TrafficSpec {
    /// The shared cluster's process grid.
    pub fn grid(&self) -> ProcGrid {
        ProcGrid::new(self.nodes, self.ppn)
    }

    /// How many tenants the scenario's reports aggregate over.
    pub fn tenant_count(&self) -> u32 {
        match self.arrival {
            Arrival::Closed { clients, .. } => clients,
            _ => self.tenants.max(1),
        }
    }
}

/// Builds one job's schedule, already relocated onto the cluster grid.
/// Implementations may cache: the result is keyed by the job's config,
/// message size **and placement** (see `ConfigKey::with_placement` in
/// `mha-bench` — two jobs differing only in node subset must not alias).
pub type BuildJob<'a> = dyn FnMut(&JobSpec) -> Result<Arc<FrozenSchedule>, String> + 'a;

/// The default (uncached) builder: solo collective on the job grid via
/// `mha_collectives::build`, then relocated onto the job's placement.
pub fn default_builder(
    spec: &TrafficSpec,
) -> impl FnMut(&JobSpec) -> Result<Arc<FrozenSchedule>, String> + '_ {
    let cluster_grid = spec.grid();
    move |job: &JobSpec| {
        let built = mha_collectives::build(&job.cfg, job.grid(spec.ppn), job.msg, &spec.cluster)
            .map_err(|e| format!("job {}: {e}", job.id))?;
        let solo = built.sched.into_schedule();
        let placed = mha_sched::relocate_onto(&solo, cluster_grid, &job.nodes)
            .map_err(|e| format!("job {}: {e}", job.id))?;
        Ok(Arc::new(placed.freeze()))
    }
}

/// One finished job of a traffic run.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// The job as sampled.
    pub job: JobSpec,
    /// When the job became runnable: its absolute arrival for open-loop
    /// jobs, predecessor completion + think time for chained ones.
    pub arrival: f64,
    /// When its last op completed.
    pub end: f64,
}

impl JobRecord {
    /// Queueing + service time: what a tenant experiences per job.
    pub fn latency(&self) -> f64 {
        self.end - self.arrival
    }
}

/// Aggregate use of one simulator resource over the run.
#[derive(Debug, Clone)]
pub struct ResourceUse {
    /// Resource label (e.g. `tx(n3,r1)`).
    pub label: String,
    /// Bytes that crossed it.
    pub bytes: f64,
    /// Its capacity in bytes/s.
    pub capacity: f64,
}

/// The outcome of one traffic run.
#[derive(Debug, Clone)]
pub struct TrafficReport {
    /// Per-job records, in job-id order.
    pub jobs: Vec<JobRecord>,
    /// Completion time of the whole merged schedule.
    pub makespan: f64,
    /// Tenants the scenario declared (some may have zero jobs).
    pub tenants: u32,
    /// Per-resource aggregate bytes/capacity (the oracle's capacity
    /// audit reads these).
    pub resources: Vec<ResourceUse>,
    /// Events the engine processed (diagnostics).
    pub events: u64,
}

/// Per-tenant accounting probe: records each op's ready and end times so
/// job arrivals/completions can be attributed through the merge spans.
/// Flow-level callbacks stay off (`wants_flows = false`) — the always-on
/// op lifecycle plus the end-of-run resource samples carry everything
/// the tenant metrics need.
struct TenantProbe {
    ready: Vec<f64>,
    end: Vec<f64>,
}

impl TenantProbe {
    fn new(n_ops: usize) -> Self {
        TenantProbe {
            ready: vec![0.0; n_ops],
            end: vec![0.0; n_ops],
        }
    }
}

impl Probe for TenantProbe {
    fn op_ready(&mut self, op: u32, t: f64) {
        self.ready[op as usize] = t;
    }

    fn op_end(&mut self, op: u32, t: f64) {
        self.end[op as usize] = t;
    }
}

/// Runs an explicit job list on the scenario's cluster through `build`.
///
/// The list may be any subset of a sampled stream as long as every
/// chained job's predecessor is present (the conformance oracle passes
/// single-tenant subsets; closed-loop chains never cross tenants).
/// Placements and releases ride in the [`JobSpec`]s untouched, so a
/// subset run prices the same jobs at the same arrivals with fewer
/// competitors — the basis of the solo-vs-merged comparisons.
pub fn run_jobs(
    spec: &TrafficSpec,
    jobs: &[JobSpec],
    build: &mut BuildJob,
) -> Result<TrafficReport, String> {
    if jobs.is_empty() {
        return Err("traffic run with zero jobs".to_string());
    }
    let grid = spec.grid();
    let mut index_of = HashMap::with_capacity(jobs.len());
    for (k, j) in jobs.iter().enumerate() {
        index_of.insert(j.id, k);
    }

    let mut frozen: Vec<Arc<FrozenSchedule>> = Vec::with_capacity(jobs.len());
    for j in jobs {
        frozen.push(build(j)?);
    }

    let mut parts = Vec::with_capacity(jobs.len());
    for (k, j) in jobs.iter().enumerate() {
        let after = match j.after {
            None => None,
            Some(pred) => Some(*index_of.get(&pred).ok_or_else(|| {
                format!(
                    "job {} chains on job {pred}, which is not in this run",
                    j.id
                )
            })?),
        };
        if let Some(a) = after {
            if a >= k {
                return Err(format!("job {} chains forward onto position {a}", j.id));
            }
        }
        parts.push(MergePart {
            sched: frozen[k].schedule(),
            release: j.release,
            after,
        });
    }

    let merged = merge_parts(grid, &parts).map_err(|e| e.to_string())?;
    let merged_fs = merged.schedule.freeze();

    let sim = Simulator::new(spec.cluster.clone()).map_err(|e| e.to_string())?;
    let mut probe = TenantProbe::new(merged_fs.n_ops());
    let res: SimResult = sim
        .run_probed(&merged_fs, &mut probe)
        .map_err(|e| e.to_string())?;

    let mut records = Vec::with_capacity(jobs.len());
    for (k, j) in jobs.iter().enumerate() {
        let span = &merged.spans[k];
        // Arrival = the instant the job's last-gating root is released:
        // ready (0 for open loop, predecessor completion for chains) plus
        // the root's release delay.
        let arrival = frozen[k]
            .roots()
            .iter()
            .map(|&r| {
                let g = (span.start + r) as usize;
                probe.ready[g] + merged_fs.schedule().release_of(mha_sched::OpId(g as u32))
            })
            .fold(0.0f64, f64::max);
        let end = (span.start..span.end)
            .map(|g| probe.end[g as usize])
            .fold(0.0f64, f64::max);
        records.push(JobRecord {
            job: j.clone(),
            arrival,
            end,
        });
    }

    let resources = res
        .resource_labels
        .iter()
        .zip(&res.resource_bytes)
        .zip(&res.resource_capacity)
        .map(|((label, &bytes), &capacity)| ResourceUse {
            label: label.clone(),
            bytes,
            capacity,
        })
        .collect();

    Ok(TrafficReport {
        jobs: records,
        makespan: res.makespan,
        tenants: spec.tenant_count(),
        resources,
        events: res.events,
    })
}

/// Samples and runs the full scenario with the default builder.
pub fn run_traffic(spec: &TrafficSpec) -> Result<TrafficReport, String> {
    let jobs = sample_jobs(spec);
    let mut build = default_builder(spec);
    run_jobs(spec, &jobs, &mut build)
}

/// The subset of `jobs` belonging to `tenant`, for solo-baseline runs.
/// Chains are tenant-local by construction, so the subset is closed
/// under `after`.
pub fn tenant_jobs(jobs: &[JobSpec], tenant: u32) -> Vec<JobSpec> {
    jobs.iter()
        .filter(|j| j.tenant == tenant)
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PlacementPolicy;

    fn spec(arrival: Arrival, policy: PlacementPolicy, seed: u64) -> TrafficSpec {
        TrafficSpec {
            cluster: ClusterSpec::thor(),
            nodes: 8,
            ppn: 2,
            arrival,
            mix: WorkloadMix::paper_default(8),
            policy,
            tenants: 2,
            seed,
        }
    }

    #[test]
    fn single_job_matches_plain_simulation_bitwise() {
        // One open-loop job arriving at t=0 must price bit-identically to
        // the relocated schedule run outside the traffic layer entirely.
        let s = spec(Arrival::Trace(vec![0.0]), PlacementPolicy::Packed, 5);
        let jobs = sample_jobs(&s);
        assert_eq!(jobs.len(), 1);
        let report = run_jobs(&s, &jobs, &mut default_builder(&s)).unwrap();

        let fs = default_builder(&s)(&jobs[0]).unwrap();
        let solo = Simulator::new(s.cluster.clone()).unwrap().run(&fs).unwrap();
        assert_eq!(report.makespan.to_bits(), solo.makespan.to_bits());
        assert_eq!(report.jobs[0].arrival, 0.0);
        assert_eq!(report.jobs[0].end.to_bits(), solo.makespan.to_bits());
    }

    #[test]
    fn closed_loop_jobs_serialize_per_client() {
        let s = spec(
            Arrival::Closed {
                clients: 2,
                jobs_per_client: 3,
                think: 1e-4,
            },
            PlacementPolicy::Striped,
            7,
        );
        let jobs = sample_jobs(&s);
        let report = run_jobs(&s, &jobs, &mut default_builder(&s)).unwrap();
        assert_eq!(report.jobs.len(), 6);
        for w in report.jobs.windows(2) {
            let (a, b) = (&w[0], &w[1]);
            if b.job.after == Some(a.job.id) {
                // Think time separates completion from the next arrival.
                assert!(
                    (b.arrival - (a.end + 1e-4)).abs() < 1e-12,
                    "arrival {} vs end+think {}",
                    b.arrival,
                    a.end + 1e-4
                );
                assert!(b.end > a.end);
            }
        }
        assert!(report.jobs.iter().all(|r| r.latency() > 0.0));
        assert!(report.makespan >= report.jobs.iter().map(|r| r.end).fold(0.0, f64::max));
    }

    #[test]
    fn chains_must_be_complete() {
        let s = spec(
            Arrival::Closed {
                clients: 1,
                jobs_per_client: 2,
                think: 0.0,
            },
            PlacementPolicy::Packed,
            1,
        );
        let jobs = sample_jobs(&s);
        let err = run_jobs(&s, &jobs[1..], &mut default_builder(&s)).unwrap_err();
        assert!(err.contains("not in this run"), "got: {err}");
    }
}
