//! The frozen schedule IR: an immutable, cache-friendly compilation of a
//! [`Schedule`] that both execution backends consume.
//!
//! A [`Schedule`] is convenient to *build* — ops carry their dependency
//! lists inline — but awkward to *execute*: every interpreter used to
//! re-derive successor adjacency (`Vec<Vec<OpId>>`) and indegree counts on
//! entry, walking heap-scattered edge lists on the hot path.
//! [`FrozenSchedule`] does this once, at build time, into flat CSR
//! (compressed sparse row) arrays:
//!
//! * `succ_off`/`succ`: for op `i`, the ops depending on it are
//!   `succ[succ_off[i]..succ_off[i+1]]`, in the same order the ad-hoc
//!   adjacency used to produce them (so event ordering — and therefore
//!   simulated timing — is bit-identical to the pre-CSR engine);
//! * `pred_off`/`pred`: the transposed view (an op's dependencies);
//! * `indegree`, `roots`, `topo`: the Kahn bootstrap state every readiness
//!   driver needs (see [`crate::runtime`]);
//! * `rows`: a dense per-op summary ([`OpRow`]) — kind class, bytes, step,
//!   lane rank — so probes and trace sinks classify ops without matching on
//!   [`OpKind`] themselves.
//!
//! `FrozenSchedule` derefs to [`Schedule`], so everything that inspects a
//! schedule (`validate`, `stats`, buffer lookups) keeps working unchanged.

use std::ops::Deref;

use crate::op::{Channel, OpKind};
use crate::schedule::Schedule;

/// Coarse classification of an op for traces, probes and summaries —
/// the same partition [`OpKind::kind_name`] reports, as a dense enum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Intra-node kernel-assisted transfer (destination CPU does the work).
    Cma,
    /// Transfer pinned to one HCA rail.
    Rail,
    /// Transfer over the multi-rail pt2pt layer (striped or round-robin).
    Rails,
    /// CPU memcpy.
    Copy,
    /// CPU reduction.
    Reduce,
    /// Pure compute.
    Compute,
}

impl OpClass {
    /// Whether the HCA, not a CPU, performs the op (network lane).
    #[inline]
    pub fn is_network(self) -> bool {
        matches!(self, OpClass::Rail | OpClass::Rails)
    }

    /// The short name [`OpKind::kind_name`] would report.
    pub fn name(self) -> &'static str {
        match self {
            OpClass::Cma => "cma",
            OpClass::Rail => "rail",
            OpClass::Rails => "rails",
            OpClass::Copy => "copy",
            OpClass::Reduce => "reduce",
            OpClass::Compute => "compute",
        }
    }
}

/// Dense per-op summary row, precomputed at freeze time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpRow {
    /// Kind classification.
    pub class: OpClass,
    /// Bytes the op moves (0 for compute).
    pub bytes: u64,
    /// Algorithm step, if one was assigned.
    pub step: Option<u32>,
    /// The rank whose timeline lane the op belongs to: the posting rank for
    /// network transfers, the executing CPU's rank otherwise.
    pub rank: u32,
}

/// An immutable, execution-ready schedule: the original [`Schedule`] plus
/// CSR adjacency, indegrees, a topological order and the dense op table.
///
/// Produced by [`Schedule::freeze`]; consumed by `mha-simnet`'s engine and
/// `mha-exec`'s executors via the readiness drivers in [`crate::runtime`].
#[derive(Debug, Clone)]
pub struct FrozenSchedule {
    sched: Schedule,
    succ_off: Vec<u32>,
    succ: Vec<u32>,
    pred_off: Vec<u32>,
    pred: Vec<u32>,
    indegree: Vec<u32>,
    roots: Vec<u32>,
    topo: Vec<u32>,
    rows: Vec<OpRow>,
    /// Rail count this schedule last validated cleanly against (see
    /// [`FrozenSchedule::validate_for`]).
    validated: std::sync::OnceLock<Option<u8>>,
}

fn row_of(kind: &OpKind, step: u32) -> OpRow {
    let step = (step != u32::MAX).then_some(step);
    let (class, rank) = match kind {
        OpKind::Transfer {
            src_rank,
            dst_rank,
            channel,
            ..
        } => match channel {
            Channel::Cma => (OpClass::Cma, dst_rank.0),
            Channel::Rail(_) => (OpClass::Rail, src_rank.0),
            Channel::AllRails => (OpClass::Rails, src_rank.0),
        },
        OpKind::Copy { actor, .. } => (OpClass::Copy, actor.0),
        OpKind::Reduce { actor, .. } => (OpClass::Reduce, actor.0),
        OpKind::Compute { actor, .. } => (OpClass::Compute, actor.0),
    };
    OpRow {
        class,
        bytes: kind.bytes() as u64,
        step,
        rank,
    }
}

impl Schedule {
    /// Compiles the schedule into its frozen execution form. O(ops + edges).
    pub fn freeze(self) -> FrozenSchedule {
        let n = self.ops().len();

        let mut indegree = vec![0u32; n];
        let mut succ_cnt = vec![0u32; n];
        let mut pred_off = vec![0u32; n + 1];
        let mut rows = Vec::with_capacity(n);
        let mut edges = 0usize;
        for (i, op) in self.ops().iter().enumerate() {
            debug_assert_eq!(op.id.index(), i, "ops must be stored in id order");
            indegree[i] = op.deps.len() as u32;
            pred_off[i + 1] = pred_off[i] + op.deps.len() as u32;
            edges += op.deps.len();
            for d in &op.deps {
                debug_assert!(d.index() < i, "dependencies must point backwards");
                succ_cnt[d.index()] += 1;
            }
            rows.push(row_of(&op.kind, op.step));
        }

        let mut succ_off = vec![0u32; n + 1];
        for i in 0..n {
            succ_off[i + 1] = succ_off[i] + succ_cnt[i];
        }
        // Fill successor edges in global creation order, which reproduces
        // exactly the per-node ordering of the former `Vec<Vec<OpId>>`
        // adjacency (each dep pushes the depending op in id order).
        let mut cursor: Vec<u32> = succ_off[..n].to_vec();
        let mut succ = vec![0u32; edges];
        let mut pred = Vec::with_capacity(edges);
        for op in self.ops() {
            for d in &op.deps {
                let di = d.index();
                succ[cursor[di] as usize] = op.id.0;
                cursor[di] += 1;
                pred.push(d.0);
            }
        }

        let roots: Vec<u32> = (0..n as u32)
            .filter(|&i| indegree[i as usize] == 0)
            .collect();
        // The builder only accepts backward-pointing dependencies, so
        // creation order *is* a topological order.
        let topo: Vec<u32> = (0..n as u32).collect();

        FrozenSchedule {
            sched: self,
            succ_off,
            succ,
            pred_off,
            pred,
            indegree,
            roots,
            topo,
            rows,
            validated: std::sync::OnceLock::new(),
        }
    }
}

impl FrozenSchedule {
    /// Number of ops.
    #[inline]
    pub fn n_ops(&self) -> usize {
        self.rows.len()
    }

    /// Number of dependency edges.
    #[inline]
    pub fn n_edges(&self) -> usize {
        self.succ.len()
    }

    /// Ops that depend on `op`, in the order the builder recorded them.
    #[inline]
    pub fn succs(&self, op: u32) -> &[u32] {
        let (a, b) = (self.succ_off[op as usize], self.succ_off[op as usize + 1]);
        &self.succ[a as usize..b as usize]
    }

    /// Dependencies of `op` (same order as `Op::deps`).
    #[inline]
    pub fn preds(&self, op: u32) -> &[u32] {
        let (a, b) = (self.pred_off[op as usize], self.pred_off[op as usize + 1]);
        &self.pred[a as usize..b as usize]
    }

    /// Dependency count of `op`.
    #[inline]
    pub fn indegree(&self, op: u32) -> u32 {
        self.indegree[op as usize]
    }

    /// All indegrees, indexed by op.
    #[inline]
    pub fn indegrees(&self) -> &[u32] {
        &self.indegree
    }

    /// Ops with no dependencies, in creation order.
    #[inline]
    pub fn roots(&self) -> &[u32] {
        &self.roots
    }

    /// A topological order of the ops (creation order, by construction).
    #[inline]
    pub fn topo_order(&self) -> &[u32] {
        &self.topo
    }

    /// The dense per-op summary table.
    #[inline]
    pub fn rows(&self) -> &[OpRow] {
        &self.rows
    }

    /// Summary row of `op`.
    #[inline]
    pub fn row(&self, op: u32) -> &OpRow {
        &self.rows[op as usize]
    }

    /// [`crate::validate`] with a success memo: an immutable frozen
    /// schedule that validated cleanly for `rails` once stays valid, so
    /// repeated runs (the simulation campaign hot path, thousands of runs
    /// of one schedule) skip the O(ops) structural walk. Failures are
    /// never memoized, and a later call with a *different* rail count
    /// re-validates in full.
    pub fn validate_for(&self, rails: Option<u8>) -> Result<(), crate::ValidateError> {
        if self.validated.get() == Some(&rails) {
            return Ok(());
        }
        crate::validate(self, rails)?;
        let _ = self.validated.set(rails);
        Ok(())
    }

    /// The underlying schedule (also reachable through `Deref`).
    #[inline]
    pub fn schedule(&self) -> &Schedule {
        &self.sched
    }

    /// Unwraps the underlying schedule, discarding the compiled arrays.
    pub fn into_schedule(self) -> Schedule {
        self.sched
    }
}

impl Deref for FrozenSchedule {
    type Target = Schedule;

    #[inline]
    fn deref(&self) -> &Schedule {
        &self.sched
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::Loc;
    use crate::builder::ScheduleBuilder;
    use crate::grid::ProcGrid;
    use crate::ids::{NodeId, RankId};

    fn diamond() -> FrozenSchedule {
        // 0 -> {1, 2} -> 3
        let grid = ProcGrid::single_node(2);
        let mut b = ScheduleBuilder::new(grid, "diamond");
        let p = b.private_buf(RankId(0), 64, "p");
        let q = b.private_buf(RankId(0), 64, "q");
        let shm = b.shared_buf(NodeId(0), 64, "shm");
        let a = b.copy(RankId(0), Loc::new(p, 0), Loc::new(q, 0), 64, &[], 0);
        let l = b.copy(RankId(0), Loc::new(q, 0), Loc::new(shm, 0), 64, &[a], 1);
        let r = b.compute(RankId(1), 100, &[a], 1);
        b.push(
            OpKind::Transfer {
                src_rank: RankId(0),
                dst_rank: RankId(1),
                src: Loc::new(q, 0),
                dst: Loc::new(q, 0),
                len: 64,
                channel: Channel::Cma,
            },
            &[l, r],
            2,
            "t",
        );
        b.finish().freeze()
    }

    #[test]
    fn csr_matches_dependency_lists() {
        let fs = diamond();
        assert_eq!(fs.n_ops(), 4);
        assert_eq!(fs.n_edges(), 4);
        assert_eq!(fs.succs(0), &[1, 2]);
        assert_eq!(fs.succs(1), &[3]);
        assert_eq!(fs.succs(2), &[3]);
        assert_eq!(fs.succs(3), &[] as &[u32]);
        assert_eq!(fs.preds(3), &[1, 2]);
        assert_eq!(fs.preds(0), &[] as &[u32]);
        assert_eq!(fs.indegrees(), &[0, 1, 1, 2]);
        assert_eq!(fs.roots(), &[0]);
        assert_eq!(fs.topo_order(), &[0, 1, 2, 3]);
    }

    #[test]
    fn rows_classify_kind_bytes_step_and_lane() {
        let fs = diamond();
        assert_eq!(fs.row(0).class, OpClass::Copy);
        assert_eq!(fs.row(0).bytes, 64);
        assert_eq!(fs.row(0).step, Some(0));
        assert_eq!(fs.row(0).rank, 0);
        assert_eq!(fs.row(2).class, OpClass::Compute);
        assert_eq!(fs.row(2).bytes, 0);
        assert_eq!(fs.row(2).rank, 1);
        // CMA transfers run on the destination CPU's lane.
        assert_eq!(fs.row(3).class, OpClass::Cma);
        assert_eq!(fs.row(3).rank, 1);
        assert!(!fs.row(3).class.is_network());
        assert_eq!(fs.row(3).class.name(), "cma");
        assert!(OpClass::Rails.is_network());
    }

    #[test]
    fn deref_exposes_the_schedule() {
        let fs = diamond();
        assert_eq!(fs.ops().len(), 4);
        assert_eq!(fs.name(), "diamond");
        assert_eq!(fs.schedule().ops().len(), 4);
        assert_eq!(fs.clone().into_schedule().ops().len(), 4);
    }

    #[test]
    fn empty_schedule_freezes() {
        let fs = ScheduleBuilder::new(ProcGrid::single_node(1), "empty")
            .finish()
            .freeze();
        assert_eq!(fs.n_ops(), 0);
        assert_eq!(fs.n_edges(), 0);
        assert!(fs.roots().is_empty());
    }

    #[test]
    fn network_steps_have_network_rows() {
        let grid = ProcGrid::new(2, 1);
        let mut b = ScheduleBuilder::new(grid, "net");
        let s = b.private_buf(RankId(0), 32, "s");
        let d = b.private_buf(RankId(1), 32, "d");
        b.transfer(
            RankId(0),
            RankId(1),
            Loc::new(s, 0),
            Loc::new(d, 0),
            32,
            Channel::AllRails,
            &[],
            0,
        );
        b.transfer(
            RankId(1),
            RankId(0),
            Loc::new(d, 0),
            Loc::new(s, 0),
            32,
            Channel::Rail(1),
            &[],
            0,
        );
        let fs = b.finish().freeze();
        assert_eq!(fs.row(0).class, OpClass::Rails);
        assert_eq!(fs.row(0).rank, 0); // posting (source) rank
        assert_eq!(fs.row(1).class, OpClass::Rail);
        assert_eq!(fs.row(1).rank, 1);
        assert!(fs.row(0).class.is_network());
    }
}
