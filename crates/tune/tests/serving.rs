//! Serving acceptance against the shipped table (`results/tuned_thor.mtab`):
//! every figure-grid query is an exact hash hit (a pure probe, no
//! fallback), and the served config never loses to an untuned family when
//! priced live. Default mode covers the Figure 12 grid at two sizes so
//! the suite stays fast; set `MHA_TUNE_FULL=1` to sweep every grid × size
//! × rail state the tuner emits.

use mha_bench::campaign::{CampaignConfig, ScheduleCache};
use mha_sched::ProcGrid;
use mha_tune::search::price_configs;
use mha_tune::{fig_grids, untuned_families, TableKey, TunedTable};

fn shipped_table() -> TunedTable {
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/tuned_thor.mtab");
    TunedTable::load(&path).unwrap_or_else(|e| {
        panic!(
            "shipped table {} unusable ({e}); regenerate with `cargo run --release -p mha-tune --bin mha_tune`",
            path.display()
        )
    })
}

fn full() -> bool {
    std::env::var_os("MHA_TUNE_FULL").is_some_and(|v| v == "1")
}

#[test]
fn shipped_table_matches_the_thor_spec() {
    let table = shipped_table();
    let spec = mha_simnet::ClusterSpec::thor();
    assert_eq!(
        table.spec_digest,
        spec.digest(),
        "shipped table was tuned against a different cluster spec"
    );
    assert_eq!(table.version, mha_tune::TABLE_FORMAT_VERSION);
    assert!(!table.is_empty());
}

#[test]
fn figure_grid_queries_are_exact_probes() {
    let table = shipped_table();
    let spec = mha_simnet::ClusterSpec::thor();
    let mut sizes = mha_bench::medium_sizes();
    sizes.extend(mha_bench::large_sizes());
    for grid in fig_grids() {
        for &msg in &sizes {
            for rails_up in [spec.rails, 1] {
                let key = TableKey::for_query(grid, msg, rails_up);
                assert!(
                    table.get(&key).is_some(),
                    "no exact entry for {key:?} — serving would fall back off the tuned grid"
                );
                // And the pure probe serves exactly what lookup returns
                // (the stored entry is already grid-valid, so coercion is
                // the identity).
                assert_eq!(
                    table.get(&key),
                    Some(&table.lookup(grid, msg, rails_up)),
                    "lookup diverged from the exact probe at {key:?}"
                );
            }
        }
    }
}

#[test]
fn tuned_serving_never_loses_to_an_untuned_family() {
    let table = shipped_table();
    let spec = mha_simnet::ClusterSpec::thor();
    let cfg = CampaignConfig::from_env();
    let cache = ScheduleCache::new(cfg.cache);
    let untuned = untuned_families();

    let (grids, sizes): (Vec<ProcGrid>, Vec<usize>) = if full() {
        let mut sizes = mha_bench::medium_sizes();
        sizes.extend(mha_bench::large_sizes());
        (fig_grids(), sizes)
    } else {
        (vec![ProcGrid::new(8, 32)], vec![256, 256 * 1024])
    };

    for &grid in &grids {
        for &msg in &sizes {
            let served = table.lookup(grid, msg, spec.rails);
            let mut configs: Vec<mha_tune::AlgoConfig> =
                untuned.iter().map(|(_, c)| c.clone()).collect();
            configs.push(served.clone());
            let prices = price_configs(&configs, grid, msg, None, &spec, &cfg, &cache).unwrap();
            let tuned_us = *prices.last().unwrap();
            for (i, (label, _)) in untuned.iter().enumerate() {
                assert!(
                    tuned_us <= prices[i] * (1.0 + 1e-9),
                    "{}x{} msg={msg}: tuned {tuned_us}us ({}) loses to {label} {}us",
                    grid.nodes(),
                    grid.ppn(),
                    served.to_kv(),
                    prices[i]
                );
            }
        }
    }
}
