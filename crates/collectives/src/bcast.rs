//! Broadcast — the first of the "other collectives" the paper's future
//! work targets (Section 7), built with the same multi-HCA-aware recipe.
//!
//! * [`build_binomial_bcast`]: the conventional flat binomial tree
//!   (`⌈log₂ R⌉` steps, topology-blind) — the library-style baseline.
//! * [`build_mha_bcast`]: hierarchical and segmented. The message is cut
//!   into segments; the root pipelines them down a binomial tree *over
//!   node leaders* (striped across all rails), and each arriving segment
//!   is published through the node's shared-memory segment while the next
//!   one is still in flight — the same phase-overlap principle as
//!   MHA-inter's chunk-counter pipeline.

use mha_sched::{BufId, Channel, Loc, NodeId, OpId, ProcGrid, RankId, ScheduleBuilder};
use mha_simnet::ClusterSpec;

use crate::chunks::chunk_bounds;
use crate::ctx::BuildError;

/// A built broadcast schedule: `bufs[r]` is rank `r`'s broadcast buffer
/// (the root's holds the payload before execution).
#[derive(Debug, Clone)]
pub struct BcastBuilt {
    /// The schedule.
    pub sched: mha_sched::FrozenSchedule,
    /// Per-rank broadcast buffer.
    pub bufs: Vec<BufId>,
    /// Broadcasting root.
    pub root: RankId,
    /// Payload size in bytes.
    pub msg: usize,
}

fn declare_bufs(b: &mut ScheduleBuilder, grid: ProcGrid, msg: usize) -> Vec<BufId> {
    grid.ranks()
        .map(|r| b.private_buf(r, msg, format!("bcast/{r}")))
        .collect()
}

/// Builds the flat binomial-tree broadcast from `root`.
pub fn build_binomial_bcast(grid: ProcGrid, msg: usize, root: RankId) -> BcastBuilt {
    assert!(msg > 0, "message size must be positive");
    assert!(root.0 < grid.nranks(), "root outside grid");
    let r = grid.nranks();
    let mut b = ScheduleBuilder::new(grid, "flat-binomial-bcast");
    let bufs = declare_bufs(&mut b, grid, msg);
    // have[rel] = op after which relative rank `rel` holds the payload.
    let mut have: Vec<Option<OpId>> = vec![None; r as usize];
    let abs = |rel: u32| RankId((root.0 + rel) % r);
    let mut dist = 1u32;
    let mut step = 0u32;
    while dist < r {
        for rel in 0..dist.min(r) {
            let to = rel + dist;
            if to >= r {
                continue;
            }
            let (src, dst) = (abs(rel), abs(to));
            let ch = if grid.same_node(src, dst) {
                Channel::Cma
            } else {
                Channel::AllRails
            };
            let deps: Vec<OpId> = have[rel as usize].into_iter().collect();
            let t = b.transfer(
                src,
                dst,
                Loc::new(bufs[src.index()], 0),
                Loc::new(bufs[dst.index()], 0),
                msg,
                ch,
                &deps,
                step,
            );
            have[to as usize] = Some(t);
        }
        dist *= 2;
        step += 1;
    }
    BcastBuilt {
        sched: b.finish().freeze(),
        bufs,
        root,
        msg,
    }
}

/// Builds the hierarchical, segmented, multi-HCA-aware broadcast.
///
/// `segment` bounds the pipeline granularity (clamped to at least 4 KB and
/// at most the payload); `spec` supplies the rail count used by validation.
pub fn build_mha_bcast(
    grid: ProcGrid,
    msg: usize,
    root: RankId,
    segment: usize,
    spec: &ClusterSpec,
) -> Result<BcastBuilt, BuildError> {
    if msg == 0 {
        return Err(BuildError::BadParameter("empty broadcast".into()));
    }
    if root.0 >= grid.nranks() {
        return Err(BuildError::BadParameter(format!(
            "root {root} outside grid"
        )));
    }
    let _ = spec; // structural parameter only (kept for API symmetry)
    let seg = segment.max(4096).min(msg);
    let nseg = msg.div_ceil(seg);
    let n = grid.nodes();
    let mut b = ScheduleBuilder::new(grid, "mha-bcast");
    let bufs = declare_bufs(&mut b, grid, msg);

    // The root's node acts as tree root; leaders are rank 0 of each node,
    // except on the root's node where the root itself leads.
    let root_node = grid.node_of(root);
    let leader_of = |node: NodeId| {
        if node == root_node {
            root
        } else {
            grid.leader_of(node)
        }
    };
    // Relative node order starting at the root's node.
    let rel_node = |rel: u32| NodeId((root_node.0 + rel) % n);

    // Per-node shm segment for the distribution pipeline.
    let shm: Vec<BufId> = grid
        .node_ids()
        .map(|node| b.shared_buf(node, msg, format!("bcast-shm/{node}")))
        .collect();

    // leader_cursor[node]: program order of the leader's CPU.
    let mut leader_net: Vec<Option<OpId>> = vec![None; n as usize];
    let mut cpu_cursor: Vec<Option<OpId>> = vec![None; grid.nranks() as usize];

    for s in 0..nseg {
        let (lo, hi) = chunk_bounds(msg, nseg, s);
        let len = hi - lo;
        if len == 0 {
            continue;
        }
        // have[rel_node] = op delivering segment s to that node's leader.
        let mut have: Vec<Option<OpId>> = vec![None; n as usize];
        let mut dist = 1u32;
        while dist < n {
            for rel in 0..dist.min(n) {
                let to = rel + dist;
                if to >= n {
                    continue;
                }
                let (src_n, dst_n) = (rel_node(rel), rel_node(to));
                let (src, dst) = (leader_of(src_n), leader_of(dst_n));
                let mut deps: Vec<OpId> = have[rel as usize].into_iter().collect();
                // Pipeline: a leader forwards segment s only after it
                // forwarded segment s-1 to the same child (per-link FIFO
                // falls out of rail sharing; program order via leader_net).
                deps.extend(leader_net[dst_n.index()]);
                let t = b.transfer(
                    src,
                    dst,
                    Loc::new(bufs[src.index()], lo),
                    Loc::new(bufs[dst.index()], lo),
                    len,
                    Channel::AllRails,
                    &deps,
                    s as u32,
                );
                have[to as usize] = Some(t);
                leader_net[dst_n.index()] = Some(t);
            }
            dist *= 2;
        }
        // Node-level distribution of segment s, overlapped with the next
        // segment's tree.
        for node in grid.node_ids() {
            let lead = leader_of(node);
            let gate = if node == root_node {
                None // the root has the data from the start
            } else {
                have[((node.0 + n - root_node.0) % n) as usize]
            };
            let mut deps: Vec<OpId> = cpu_cursor[lead.index()].into_iter().collect();
            deps.extend(gate);
            let cin = b.copy(
                lead,
                Loc::new(bufs[lead.index()], lo),
                Loc::new(shm[node.index()], lo),
                len,
                &deps,
                1000 + s as u32,
            );
            cpu_cursor[lead.index()] = Some(cin);
            for rank in grid.ranks_of(node) {
                if rank == lead {
                    continue;
                }
                let mut deps: Vec<OpId> = cpu_cursor[rank.index()].into_iter().collect();
                deps.push(cin);
                let cout = b.copy(
                    rank,
                    Loc::new(shm[node.index()], lo),
                    Loc::new(bufs[rank.index()], lo),
                    len,
                    &deps,
                    2000 + s as u32,
                );
                cpu_cursor[rank.index()] = Some(cout);
            }
        }
    }
    Ok(BcastBuilt {
        sched: b.finish().freeze(),
        bufs,
        root,
        msg,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mha_exec::{verify_bcast, Mode};
    use mha_simnet::Simulator;

    fn assert_bcast_correct(built: &BcastBuilt) {
        mha_sched::validate(&built.sched, Some(2)).unwrap();
        let races = mha_sched::check_races(&built.sched);
        assert!(races.is_empty(), "races: {races:?}");
        for mode in [Mode::Single, Mode::Threaded(4)] {
            verify_bcast(
                &built.sched,
                &built.bufs,
                built.root.index(),
                built.msg,
                mode,
            )
            .unwrap();
        }
    }

    #[test]
    fn binomial_bcast_is_correct_for_any_layout_and_root() {
        for (nodes, ppn) in [(1u32, 1u32), (1, 5), (2, 3), (3, 2), (4, 4)] {
            let grid = ProcGrid::new(nodes, ppn);
            for root in [0, grid.nranks() - 1, grid.nranks() / 2] {
                let built = build_binomial_bcast(grid, 40, RankId(root));
                assert_bcast_correct(&built);
            }
        }
    }

    #[test]
    fn mha_bcast_is_correct_for_any_layout_and_root() {
        for (nodes, ppn) in [(1u32, 4u32), (2, 3), (3, 2), (4, 4)] {
            let grid = ProcGrid::new(nodes, ppn);
            for root in [0, grid.nranks() - 1] {
                let built = build_mha_bcast(grid, 40_000, RankId(root), 8192, &ClusterSpec::thor())
                    .unwrap();
                assert_bcast_correct(&built);
            }
        }
    }

    #[test]
    fn binomial_takes_log2_steps() {
        let built = build_binomial_bcast(ProcGrid::new(1, 8), 64, RankId(0));
        let max_step = built.sched.ops().iter().map(|o| o.step).max().unwrap();
        assert_eq!(max_step, 2); // steps 0,1,2 for 8 ranks
        assert_eq!(built.sched.ops().len(), 7); // R-1 transfers
    }

    #[test]
    fn mha_bcast_beats_binomial_for_large_messages_at_scale() {
        let spec = ClusterSpec::thor();
        let sim = Simulator::new(spec.clone()).unwrap();
        let grid = ProcGrid::new(8, 16);
        let msg = 8 << 20;
        let flat = build_binomial_bcast(grid, msg, RankId(0));
        let mha = build_mha_bcast(grid, msg, RankId(0), 256 * 1024, &spec).unwrap();
        let t_flat = sim.run(&flat.sched).unwrap().latency_us();
        let t_mha = sim.run(&mha.sched).unwrap().latency_us();
        assert!(
            t_mha < t_flat * 0.7,
            "mha {t_mha} should clearly beat binomial {t_flat}"
        );
    }

    #[test]
    fn tiny_messages_are_latency_bound_for_both() {
        // At 512 B nothing is bandwidth-bound: both designs cost a few
        // startup latencies and stay within a small factor of each other
        // (the hierarchical tree has fewer inter-node hops, so it may even
        // edge ahead; the interesting regime is the large-message one).
        let spec = ClusterSpec::thor();
        let sim = Simulator::new(spec.clone()).unwrap();
        let grid = ProcGrid::new(4, 4);
        let msg = 512;
        let flat = build_binomial_bcast(grid, msg, RankId(0));
        let mha = build_mha_bcast(grid, msg, RankId(0), 4096, &spec).unwrap();
        let t_flat = sim.run(&flat.sched).unwrap().latency_us();
        let t_mha = sim.run(&mha.sched).unwrap().latency_us();
        assert!(t_flat < 20.0 && t_mha < 20.0, "flat {t_flat}, mha {t_mha}");
        let ratio = t_flat.max(t_mha) / t_flat.min(t_mha);
        assert!(ratio < 2.0, "ratio {ratio}");
    }

    #[test]
    fn bad_parameters_rejected() {
        let spec = ClusterSpec::thor();
        assert!(matches!(
            build_mha_bcast(ProcGrid::new(2, 2), 0, RankId(0), 4096, &spec),
            Err(BuildError::BadParameter(_))
        ));
        assert!(matches!(
            build_mha_bcast(ProcGrid::new(2, 2), 64, RankId(9), 4096, &spec),
            Err(BuildError::BadParameter(_))
        ));
    }

    #[test]
    fn segmentation_pipelines_the_tree() {
        // With 4 segments, later tree steps overlap earlier copies: the
        // makespan is far below nseg * single-segment latency.
        let spec = ClusterSpec::thor();
        let sim = Simulator::new(spec.clone()).unwrap();
        let grid = ProcGrid::new(8, 4);
        let msg = 4 << 20;
        let coarse = build_mha_bcast(grid, msg, RankId(0), msg, &spec).unwrap();
        let fine = build_mha_bcast(grid, msg, RankId(0), 128 * 1024, &spec).unwrap();
        let t_coarse = sim.run(&coarse.sched).unwrap().latency_us();
        let t_fine = sim.run(&fine.sched).unwrap().latency_us();
        assert!(
            t_fine < t_coarse * 0.75,
            "pipelining should help: fine {t_fine} vs coarse {t_coarse}"
        );
    }
}
