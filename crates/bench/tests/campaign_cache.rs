//! Cache-correctness properties of the campaign [`ScheduleCache`].
//!
//! Two bars: distinct build configurations must **never** share a cache
//! entry (the [`ConfigKey`] is structural — a digest collision can at
//! worst co-locate two keys in one shard, never alias them), and repeated
//! lookups must reuse the first build's `Arc` bit-exactly, with exact
//! hit/miss accounting.

use std::sync::Arc;

use mha_bench::campaign::{
    run_campaign_with, CampaignConfig, CampaignPoint, ConfigKey, ScheduleCache,
};
use mha_bench::pt2pt_rails_schedule;
use mha_sched::{FrozenSchedule, ProcGrid};
use mha_simnet::ClusterSpec;
use proptest::prelude::*;

const FAMILIES: [&str; 4] = [
    "allgather/ring",
    "allgather/mha-inter-ring",
    "allreduce/FlatRing",
    "bcast/binomial",
];

/// A random build-relevant configuration; every field the key covers can
/// vary.
fn arb_key() -> impl Strategy<Value = ConfigKey> {
    (
        0usize..FAMILIES.len(),
        1u32..5,
        1u32..9,
        1usize..=(1 << 16),
        0u64..3,
        any::<bool>(),
    )
        .prop_map(|(f, nodes, ppn, msg, salt, single_rail)| {
            let spec = if single_rail {
                ClusterSpec::thor_single_rail()
            } else {
                ClusterSpec::thor()
            };
            ConfigKey::new(FAMILIES[f], ProcGrid::new(nodes, ppn), msg, &spec).with_salt(salt)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Structurally distinct keys get distinct entries (no aliasing, one
    /// build each); repeated lookups of the same key share the original
    /// `Arc` without re-running the build. Counters stay exact throughout.
    #[test]
    fn distinct_configs_never_share_an_entry(
        keys in proptest::collection::vec(arb_key(), 1..12),
    ) {
        let mut distinct: Vec<ConfigKey> = Vec::new();
        for k in keys {
            if !distinct.contains(&k) {
                distinct.push(k);
            }
        }
        let cache = ScheduleCache::new(true);
        let mut built: Vec<Arc<FrozenSchedule>> = Vec::new();
        for k in &distinct {
            built.push(cache.get_or_build(k, || Ok(pt2pt_rails_schedule(k.msg))).unwrap());
        }
        prop_assert_eq!(cache.len(), distinct.len());
        prop_assert_eq!(cache.misses(), distinct.len() as u64);
        prop_assert_eq!(cache.hits(), 0);
        for i in 0..distinct.len() {
            for j in 0..i {
                prop_assert!(
                    !Arc::ptr_eq(&built[i], &built[j]),
                    "keys {:?} and {:?} aliased one schedule",
                    distinct[i],
                    distinct[j]
                );
            }
        }
        // Second lookups: all hits, same Arcs, and the build closure must
        // not run again (it would fail the test by erroring).
        for (k, first) in distinct.iter().zip(&built) {
            let again = cache
                .get_or_build(k, || Err("cache re-ran a memoized build".into()))
                .unwrap();
            prop_assert!(Arc::ptr_eq(first, &again));
        }
        prop_assert_eq!(cache.hits(), distinct.len() as u64);
        prop_assert_eq!(cache.misses(), distinct.len() as u64);
    }

    /// Flipping any single field of a key — family, nodes, ppn, msg, spec
    /// digest or salt — yields a different entry.
    #[test]
    fn every_key_field_separates_entries(base in arb_key()) {
        let mut variants = vec![base.clone()];
        let mut v = base.clone();
        v.family.push('!');
        variants.push(v);
        let mut v = base.clone();
        v.nodes += 1;
        variants.push(v);
        let mut v = base.clone();
        v.ppn += 1;
        variants.push(v);
        let mut v = base.clone();
        v.msg += 1;
        variants.push(v);
        let mut v = base.clone();
        v.spec_digest ^= 1;
        variants.push(v);
        variants.push(base.clone().with_salt(base.salt + 1));

        let cache = ScheduleCache::new(true);
        for k in &variants {
            cache.get_or_build(k, || Ok(pt2pt_rails_schedule(64))).unwrap();
        }
        prop_assert_eq!(cache.len(), variants.len());
        prop_assert_eq!(cache.misses(), variants.len() as u64);
        prop_assert_eq!(cache.hits(), 0);
    }
}

/// End-to-end cache reuse: points sharing a key build once within a run,
/// a second campaign over a warm cache builds nothing, and every value is
/// bit-identical to the cold run.
#[test]
fn warm_campaigns_hit_the_cache_and_match_cold_runs_bitwise() {
    let spec = ClusterSpec::thor();
    let shared = ConfigKey::new("test/shared", ProcGrid::new(2, 1), 4096, &spec);
    let other = ConfigKey::new("test/other", ProcGrid::new(2, 1), 65536, &spec);
    let points = vec![
        CampaignPoint::sim("a", shared.clone(), spec.clone(), || {
            Ok(pt2pt_rails_schedule(4096))
        }),
        CampaignPoint::sim("b", shared, spec.clone(), || Ok(pt2pt_rails_schedule(4096))),
        CampaignPoint::sim("c", other, spec.clone(), || Ok(pt2pt_rails_schedule(65536))),
    ];
    let cfg = CampaignConfig::default().with_workers(4);

    let cache = ScheduleCache::new(true);
    let cold = run_campaign_with(&points, &cfg, &cache).unwrap();
    assert_eq!(cold.cache_misses, 2, "two distinct keys, two builds");
    assert_eq!(cold.cache_hits, 1, "the shared key's second point hits");

    let warm = run_campaign_with(&points, &cfg, &cache).unwrap();
    assert_eq!(warm.cache_misses, 2, "warm run must not build anything");
    assert_eq!(warm.cache_hits, 1 + 3, "warm run hits once per point");

    for (c, w) in cold.results.iter().zip(&warm.results) {
        assert_eq!(c.rows[0].values[0].to_bits(), w.rows[0].values[0].to_bits());
        assert_eq!(c.rows[0].values[1].to_bits(), w.rows[0].values[1].to_bits());
    }
    // The points sharing one key simulated the same schedule: same cells.
    assert_eq!(
        cold.results[0].rows[0].values[0].to_bits(),
        cold.results[1].rows[0].values[0].to_bits()
    );
}
