//! Resource identity and capacity layout for a simulated cluster.
//!
//! Every op occupies a small set of resources while its fluid phase is
//! active; the water-filling allocator shares each resource's capacity
//! max-min fairly among the flows crossing it. The resource inventory per
//! node is:
//!
//! * one **CPU copy engine** per rank (capacity `copy_bw`) — CPU copies,
//!   CMA transfers and compute contend here;
//! * one **memory** resource (capacity `mem_bw`) shared by all CPU-driven
//!   byte movement on the node — this produces the paper's congestion
//!   factor `cg(M, L−1)`;
//! * per rail, a **tx** and an **rx** resource (capacity `rail_bw` each;
//!   InfiniBand is full-duplex). HCA (RDMA) traffic deliberately does *not*
//!   consume the memory resource: the paper's model treats HCA transfers as
//!   independent of the CPU/memory path (`T_H` vs `T_C`), which is what
//!   makes offloading profitable.

use mha_sched::{NodeId, ProcGrid, RankId};

use crate::topology::ClusterSpec;

/// The socket a rank's CPU work charges (0 when NUMA modeling is off).
pub(crate) fn socket_of(spec: &ClusterSpec, grid: &ProcGrid, rank: RankId) -> u32 {
    spec.numa.as_ref().map_or(0, |n| n.socket_of(grid, rank))
}

/// Dense index of a simulated resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ResourceId(pub u32);

impl ResourceId {
    /// As a plain index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Maps (node, rank, rail, socket) coordinates to dense [`ResourceId`]s
/// and back.
#[derive(Debug, Clone)]
pub struct ResourceMap {
    nranks: u32,
    nodes: u32,
    rails: u8,
    /// Sockets per node (1 = NUMA modeling off; then no xsocket resources).
    sockets: u32,
    capacities: Vec<f64>,
}

impl ResourceMap {
    /// Builds the resource layout for `grid` on `spec`.
    pub fn new(grid: &ProcGrid, spec: &ClusterSpec) -> Self {
        let nranks = grid.nranks();
        let nodes = grid.nodes();
        let rails = spec.rails;
        let sockets = spec.sockets();
        let n_mem = nodes as usize * sockets as usize;
        let n_rail = 2 * nodes as usize * rails as usize;
        let n_xsocket = if sockets > 1 { nodes as usize } else { 0 };
        let total = nranks as usize + n_mem + n_rail + n_xsocket;
        let mut capacities = vec![0.0; total];
        for r in 0..nranks {
            capacities[r as usize] = spec.copy_bw;
        }
        // Per-socket memory controllers share the node's aggregate.
        for i in 0..n_mem {
            capacities[nranks as usize + i] = spec.mem_bw / f64::from(sockets);
        }
        let rail_base = nranks as usize + n_mem;
        for i in 0..n_rail {
            capacities[rail_base + i] = spec.rail_bw;
        }
        if let Some(numa) = &spec.numa {
            for i in 0..n_xsocket {
                capacities[rail_base + n_rail + i] = numa.xsocket_bw;
            }
        }
        ResourceMap {
            nranks,
            nodes,
            rails,
            sockets,
            capacities,
        }
    }

    /// Total number of resources.
    #[inline]
    pub fn len(&self) -> usize {
        self.capacities.len()
    }

    /// Whether the map is empty (never true for a valid grid).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.capacities.is_empty()
    }

    /// Capacity (bytes/s) of `r`.
    #[inline]
    pub fn capacity(&self, r: ResourceId) -> f64 {
        self.capacities[r.index()]
    }

    /// All capacities, indexed by [`ResourceId`].
    #[inline]
    pub fn capacities(&self) -> &[f64] {
        &self.capacities
    }

    /// The CPU copy engine of `rank`.
    #[inline]
    pub fn cpu(&self, rank: RankId) -> ResourceId {
        debug_assert!(rank.0 < self.nranks);
        ResourceId(rank.0)
    }

    /// The memory resource of `socket` on `node` (socket 0 when NUMA
    /// modeling is off).
    #[inline]
    pub fn mem(&self, node: NodeId, socket: u32) -> ResourceId {
        debug_assert!(node.0 < self.nodes && socket < self.sockets);
        ResourceId(self.nranks + node.0 * self.sockets + socket)
    }

    /// The transmit side of rail `h` on `node`.
    #[inline]
    pub fn tx(&self, node: NodeId, rail: u8) -> ResourceId {
        debug_assert!(node.0 < self.nodes && rail < self.rails);
        ResourceId(
            self.nranks
                + self.nodes * self.sockets
                + node.0 * u32::from(self.rails)
                + u32::from(rail),
        )
    }

    /// The receive side of rail `h` on `node`.
    #[inline]
    pub fn rx(&self, node: NodeId, rail: u8) -> ResourceId {
        debug_assert!(node.0 < self.nodes && rail < self.rails);
        ResourceId(
            self.nranks
                + self.nodes * self.sockets
                + self.nodes * u32::from(self.rails)
                + node.0 * u32::from(self.rails)
                + u32::from(rail),
        )
    }

    /// The cross-socket interconnect of `node`.
    ///
    /// # Panics
    ///
    /// Debug-asserts that NUMA modeling is on (`sockets > 1`).
    #[inline]
    pub fn xsocket(&self, node: NodeId) -> ResourceId {
        debug_assert!(self.sockets > 1, "xsocket needs NUMA modeling");
        debug_assert!(node.0 < self.nodes);
        ResourceId(
            self.nranks
                + self.nodes * self.sockets
                + 2 * self.nodes * u32::from(self.rails)
                + node.0,
        )
    }

    /// Human-readable name of a resource, for traces and utilization dumps.
    pub fn label(&self, r: ResourceId) -> String {
        let i = r.0;
        if i < self.nranks {
            return format!("cpu(r{i})");
        }
        let i = i - self.nranks;
        if i < self.nodes * self.sockets {
            let node = i / self.sockets;
            let socket = i % self.sockets;
            return if self.sockets == 1 {
                format!("mem(n{node})")
            } else {
                format!("mem(n{node},s{socket})")
            };
        }
        let i = i - self.nodes * self.sockets;
        let per_node = u32::from(self.rails);
        if i < self.nodes * per_node {
            return format!("tx(n{},h{})", i / per_node, i % per_node);
        }
        let i = i - self.nodes * per_node;
        if i < self.nodes * per_node {
            return format!("rx(n{},h{})", i / per_node, i % per_node);
        }
        let i = i - self.nodes * per_node;
        format!("xsocket(n{i})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> ResourceMap {
        ResourceMap::new(&ProcGrid::new(2, 3), &ClusterSpec::thor())
    }

    #[test]
    fn layout_is_dense_and_disjoint() {
        let m = map();
        // 6 cpus + 2 mems + 2 nodes * 2 rails * 2 directions = 16
        assert_eq!(m.len(), 16);
        let mut seen = std::collections::HashSet::new();
        for r in 0..6 {
            assert!(seen.insert(m.cpu(RankId(r))));
        }
        for n in 0..2 {
            assert!(seen.insert(m.mem(NodeId(n), 0)));
            for h in 0..2 {
                assert!(seen.insert(m.tx(NodeId(n), h)));
                assert!(seen.insert(m.rx(NodeId(n), h)));
            }
        }
        assert_eq!(seen.len(), 16);
        assert!(seen.iter().all(|r| r.index() < m.len()));
    }

    #[test]
    fn capacities_follow_spec() {
        let spec = ClusterSpec::thor();
        let m = map();
        assert_eq!(m.capacity(m.cpu(RankId(0))), spec.copy_bw);
        assert_eq!(m.capacity(m.mem(NodeId(1), 0)), spec.mem_bw);
        assert_eq!(m.capacity(m.tx(NodeId(0), 1)), spec.rail_bw);
        assert_eq!(m.capacity(m.rx(NodeId(1), 0)), spec.rail_bw);
    }

    #[test]
    fn labels_are_descriptive() {
        let m = map();
        assert_eq!(m.label(m.cpu(RankId(4))), "cpu(r4)");
        assert_eq!(m.label(m.mem(NodeId(0), 0)), "mem(n0)");
        assert_eq!(m.label(m.tx(NodeId(1), 0)), "tx(n1,h0)");
        assert_eq!(m.label(m.rx(NodeId(0), 1)), "rx(n0,h1)");
    }

    #[test]
    fn not_empty() {
        assert!(!map().is_empty());
    }

    #[test]
    fn numa_layout_adds_socket_memories_and_interconnect() {
        let spec = ClusterSpec::thor_numa();
        let grid = ProcGrid::new(2, 4);
        let m = ResourceMap::new(&grid, &spec);
        // 8 cpus + 2 nodes * 2 sockets mem + 8 rail endpoints + 2 xsocket.
        assert_eq!(m.len(), 8 + 4 + 8 + 2);
        assert_eq!(m.capacity(m.mem(NodeId(0), 1)), spec.mem_bw / 2.0);
        let numa = spec.numa.as_ref().unwrap();
        assert_eq!(m.capacity(m.xsocket(NodeId(1))), numa.xsocket_bw);
        assert_eq!(m.label(m.mem(NodeId(1), 1)), "mem(n1,s1)");
        assert_eq!(m.label(m.xsocket(NodeId(0))), "xsocket(n0)");
        // All ids distinct.
        let mut seen = std::collections::HashSet::new();
        for r in 0..8 {
            assert!(seen.insert(m.cpu(RankId(r))));
        }
        for n in 0..2 {
            for sck in 0..2 {
                assert!(seen.insert(m.mem(NodeId(n), sck)));
            }
            for h in 0..2 {
                assert!(seen.insert(m.tx(NodeId(n), h)));
                assert!(seen.insert(m.rx(NodeId(n), h)));
            }
            assert!(seen.insert(m.xsocket(NodeId(n))));
        }
        assert_eq!(seen.len(), m.len());
    }

    #[test]
    fn socket_of_defaults_to_zero_without_numa() {
        let spec = ClusterSpec::thor();
        let grid = ProcGrid::new(1, 8);
        for r in 0..8 {
            assert_eq!(socket_of(&spec, &grid, RankId(r)), 0);
        }
        let numa_spec = ClusterSpec::thor_numa();
        assert_eq!(socket_of(&numa_spec, &grid, RankId(7)), 1);
    }
}
