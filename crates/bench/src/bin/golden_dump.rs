//! Prints the exact (bit-level) simulated makespans of the golden
//! workloads guarded by `tests/golden_latencies.rs`. Re-run this after an
//! *intentional* model change to regenerate the constants; an unintentional
//! difference is a regression in the scheduler → simulator pipeline.

use mha_collectives::mha::{build_mha_inter, InterAlgo, MhaInterConfig, Offload};
use mha_collectives::AllgatherAlgo;
use mha_sched::ProcGrid;
use mha_simnet::{ClusterSpec, Simulator};

fn main() {
    let spec = ClusterSpec::thor();
    let sim = Simulator::new(spec.clone()).unwrap();

    let mut rows: Vec<(String, f64)> = Vec::new();

    // Fig. 2 workload: flat Ring Allgather, 2 nodes x 2 PPN, 1 MB.
    let built = AllgatherAlgo::Ring
        .build(ProcGrid::new(2, 2), 1 << 20, &spec)
        .unwrap();
    rows.push((
        "fig02/ring_2x2_1M".into(),
        sim.run(&built.sched).unwrap().makespan,
    ));

    // Fig. 8 workload: MHA-inter with Ring vs RD phase 2, 16 nodes x 32 PPN.
    for (name, algo) in [
        ("ring", InterAlgo::Ring),
        ("rd", InterAlgo::RecursiveDoubling),
    ] {
        for msg in [4096usize, 64 * 1024] {
            let cfg = MhaInterConfig {
                inter: algo,
                offload: Offload::Auto,
                overlap: true,
            };
            let built = build_mha_inter(ProcGrid::new(16, 32), msg, cfg, &spec).unwrap();
            rows.push((
                format!("fig08/{name}_16x32_{msg}"),
                sim.run(&built.sched).unwrap().makespan,
            ));
        }
    }

    // Fig. 12 workload: 8 nodes x 32 PPN contestants at 4 KB.
    for (name, algo) in [
        ("ring", AllgatherAlgo::Ring),
        ("bruck", AllgatherAlgo::Bruck),
        ("mha", AllgatherAlgo::MhaInter(MhaInterConfig::default())),
    ] {
        let built = algo.build(ProcGrid::new(8, 32), 4096, &spec).unwrap();
        rows.push((
            format!("fig12/{name}_8x32_4096"),
            sim.run(&built.sched).unwrap().makespan,
        ));
    }

    for (name, makespan) in rows {
        println!(
            "(\"{name}\", f64::from_bits(0x{:016x})), // {:.6} us",
            makespan.to_bits(),
            makespan * 1e6
        );
    }
}
