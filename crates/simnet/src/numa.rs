//! Opt-in NUMA modeling — the substrate for the paper's stated future
//! work: *"We can have a 3-level design with the overlapping of
//! intra-socket, inter-socket, and inter-node communication"*
//! (Section 7).
//!
//! When a [`NumaSpec`] is attached to a [`crate::ClusterSpec`], each node's
//! memory system splits into per-socket resources plus a cross-socket
//! interconnect (UPI-like). CPU-driven byte movement then charges the
//! *actor's* socket memory, and any transfer whose peer lives on the other
//! socket additionally crosses the interconnect — so NUMA-blind algorithms
//! (which bounce half their traffic across sockets) pay for it, and
//! socket-aware ones do not. With `numa: None` (the default Thor preset)
//! nothing changes, keeping the paper-reproduction numbers intact.

use mha_sched::{ProcGrid, RankId};

/// NUMA layout of one node.
#[derive(Debug, Clone, PartialEq)]
pub struct NumaSpec {
    /// Sockets per node (Thor: 2 × Broadwell).
    pub sockets: u32,
    /// Effective cross-socket copy bandwidth, bytes/s. Broadwell's QPI
    /// links are ~19 GB/s raw, but remote-read memcpy streams sustain only
    /// ~35-40% of that after coherence/protocol overheads — about 7 GB/s —
    /// which is what a NUMA-blind collective actually experiences.
    pub xsocket_bw: f64,
    /// Extra startup latency for a cross-socket transfer (remote cache
    /// line / snoop cost folded into one constant).
    pub xsocket_alpha: f64,
}

impl NumaSpec {
    /// Broadwell-like dual-socket preset.
    pub fn broadwell_2s() -> Self {
        NumaSpec {
            sockets: 2,
            xsocket_bw: 7.0e9,
            xsocket_alpha: 0.15e-6,
        }
    }

    /// Sanity check.
    pub fn validate(&self) -> Result<(), String> {
        if self.sockets < 2 {
            return Err(format!(
                "NUMA modeling needs at least 2 sockets, got {}",
                self.sockets
            ));
        }
        if !(self.xsocket_bw.is_finite() && self.xsocket_bw > 0.0) {
            return Err(format!(
                "xsocket_bw must be positive, got {}",
                self.xsocket_bw
            ));
        }
        if !(self.xsocket_alpha.is_finite() && self.xsocket_alpha >= 0.0) {
            return Err(format!(
                "xsocket_alpha must be non-negative, got {}",
                self.xsocket_alpha
            ));
        }
        Ok(())
    }

    /// The socket hosting `rank` under block placement: local ranks are
    /// split evenly across sockets in contiguous blocks (the usual
    /// `--map-by socket`-less default).
    pub fn socket_of(&self, grid: &ProcGrid, rank: RankId) -> u32 {
        let local = grid.local_index(rank);
        let per = grid.ppn().div_ceil(self.sockets);
        (local / per).min(self.sockets - 1)
    }

    /// Whether two co-located ranks sit on different sockets.
    pub fn cross_socket(&self, grid: &ProcGrid, a: RankId, b: RankId) -> bool {
        grid.same_node(a, b) && self.socket_of(grid, a) != self.socket_of(grid, b)
    }

    /// Ranks-per-socket for `grid` (the last socket may hold fewer).
    pub fn ranks_per_socket(&self, grid: &ProcGrid) -> u32 {
        grid.ppn().div_ceil(self.sockets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadwell_preset_is_valid() {
        let n = NumaSpec::broadwell_2s();
        n.validate().unwrap();
        assert_eq!(n.sockets, 2);
    }

    #[test]
    fn socket_mapping_splits_local_ranks_in_blocks() {
        let n = NumaSpec::broadwell_2s();
        let grid = ProcGrid::new(2, 8);
        // Node 0: ranks 0..8 → sockets 0,0,0,0,1,1,1,1
        for r in 0..4 {
            assert_eq!(n.socket_of(&grid, RankId(r)), 0);
        }
        for r in 4..8 {
            assert_eq!(n.socket_of(&grid, RankId(r)), 1);
        }
        // Node 1 mirrors the layout.
        assert_eq!(n.socket_of(&grid, RankId(8)), 0);
        assert_eq!(n.socket_of(&grid, RankId(15)), 1);
    }

    #[test]
    fn cross_socket_requires_same_node() {
        let n = NumaSpec::broadwell_2s();
        let grid = ProcGrid::new(2, 8);
        assert!(n.cross_socket(&grid, RankId(0), RankId(7)));
        assert!(!n.cross_socket(&grid, RankId(0), RankId(3)));
        // Different nodes: never "cross-socket" (it is cross-node).
        assert!(!n.cross_socket(&grid, RankId(0), RankId(12)));
    }

    #[test]
    fn odd_ppn_rounds_up_per_socket() {
        let n = NumaSpec::broadwell_2s();
        let grid = ProcGrid::new(1, 5);
        assert_eq!(n.ranks_per_socket(&grid), 3);
        assert_eq!(n.socket_of(&grid, RankId(2)), 0);
        assert_eq!(n.socket_of(&grid, RankId(3)), 1);
        assert_eq!(n.socket_of(&grid, RankId(4)), 1);
    }

    #[test]
    fn invalid_specs_rejected() {
        let mut n = NumaSpec::broadwell_2s();
        n.sockets = 1;
        assert!(n.validate().is_err());
        let mut n = NumaSpec::broadwell_2s();
        n.xsocket_bw = 0.0;
        assert!(n.validate().is_err());
        let mut n = NumaSpec::broadwell_2s();
        n.xsocket_alpha = f64::NAN;
        assert!(n.validate().is_err());
    }
}
