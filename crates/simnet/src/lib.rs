//! # mha-simnet — a discrete-event multi-rail cluster simulator
//!
//! The hardware substitute for the paper's Thor cluster (32 nodes ×
//! 32 cores, 2 × HDR100 HCAs per node). Schedules produced by
//! `mha-collectives` are priced in virtual time on a fluid-flow model:
//!
//! * **Resources** ([`ResourceMap`]): per-rank CPU copy engines, per-node
//!   aggregate memory bandwidth, and full-duplex tx/rx servers per HCA rail.
//! * **Contention** ([`max_min_rates`]): concurrent flows receive max-min
//!   fair bandwidth shares, recomputed incrementally over the affected
//!   connected component on every flow arrival/departure. Rail serialization
//!   and the paper's memory-congestion factor `cg(M, L−1)` *emerge* from
//!   this instead of being hard-coded.
//! * **Protocol costs** ([`ClusterSpec`]): startup latencies, a rendezvous
//!   surcharge for large rail messages, the 16 KB striping threshold, and
//!   round-robin rail selection for small messages (Section 2.1).
//! * **Observability** ([`Trace`], [`mha_sched::Probe`]): every run can be
//!   narrated through a pluggable probe ([`Simulator::run_probed`]) — the
//!   ASCII Gantt timeline in the spirit of the paper's Figure 2
//!   ([`TraceBuilder`]), JSONL event streams ([`mha_sched::JsonlProbe`]),
//!   and utilization/overlap summaries ([`mha_sched::SummaryProbe`]) for
//!   the Figure 6/7 arguments.
//!
//! ```
//! use mha_simnet::{ClusterSpec, Placement, Simulator};
//!
//! let sim = Simulator::new(ClusterSpec::thor()).unwrap();
//! let one_rail = Simulator::new(ClusterSpec::thor_single_rail()).unwrap();
//! let m = 4 << 20;
//! let bw2 = mha_simnet::pt2pt_bandwidth_mbps(&sim, Placement::InterNode, m, 64).unwrap();
//! let bw1 = mha_simnet::pt2pt_bandwidth_mbps(&one_rail, Placement::InterNode, m, 64).unwrap();
//! assert!(bw2 / bw1 > 1.8); // Figure 1: the second HCA doubles bandwidth
//! ```

#![warn(missing_docs)]

mod calendar;
mod engine;
mod fault;
mod metrics;
mod microbench;
mod numa;
mod resources;
mod topology;
mod trace;
mod waterfill;

pub use engine::{
    check_enabled, incremental_enabled, set_check_enabled, set_incremental_enabled, EngineArena,
    SimConfig, SimError, SimResult, Simulator,
};
pub use fault::{FaultEvent, FaultKind, FaultSpec, DEFAULT_RETRY_TIMEOUT};
pub use metrics::{kind_breakdown, phase_breakdown, KindBreakdown};
pub use microbench::{pt2pt_bandwidth_mbps, pt2pt_latency_us, size_sweep, Placement};
pub use numa::NumaSpec;
pub use resources::{ResourceId, ResourceMap};
pub use topology::ClusterSpec;
pub use trace::{intersection_length, union_length, Lane, OpSpan, SpanMeta, Trace, TraceBuilder};
pub use waterfill::{
    max_min_rates, FillError, FillStats, FlowSpec, IncrementalFiller, WaterFiller,
};
