//! Figures 6/7: overlap of inter-node transfers with intra-node shm copies
//! during phases 2/3, Ring vs Recursive Doubling.
//!
//! One simulation per config feeds two probe sinks through [`Tee`]: the
//! timeline ([`TraceBuilder`]) for the phase-filtered interval math, and a
//! [`SummaryProbe`] whose whole-run overlap fraction is the headline metric.
//! Each config is one campaign point (see `mha_bench::campaign`); its row
//! carries the six metrics and the rendered run summary rides in the note.

use std::sync::Arc;

use mha_apps::report::{render_run_summary, Table};
use mha_bench::campaign::{run_campaign, CampaignConfig, CampaignPoint, Row};
use mha_collectives::mha::{build_mha_inter, InterAlgo, MhaInterConfig, Offload};
use mha_sched::{ProcGrid, SummaryProbe, Tee};
use mha_simnet::{intersection_length, ClusterSpec, Simulator, TraceBuilder};

fn main() {
    mha_bench::apply_check_flag();
    let spec = ClusterSpec::thor();
    let sim = Arc::new(Simulator::new(spec.clone()).unwrap());
    let msg = 64 * 1024;
    let configs = [
        (4u32, InterAlgo::Ring, "ppn4/Ring"),
        (4, InterAlgo::RecursiveDoubling, "ppn4/RD"),
        (32, InterAlgo::Ring, "ppn32/Ring"),
        (32, InterAlgo::RecursiveDoubling, "ppn32/RD"),
    ];
    let points: Vec<CampaignPoint> = configs
        .iter()
        .map(|&(ppn, algo, name)| {
            let sim = Arc::clone(&sim);
            let spec = spec.clone();
            CampaignPoint::custom(name, move |_seed| {
                let grid = ProcGrid::new(8, ppn);
                let cfg = MhaInterConfig {
                    inter: algo,
                    offload: Offload::None, // isolate the phase-2/3 overlap effect
                    overlap: true,
                };
                let built = build_mha_inter(grid, msg, cfg, &spec).map_err(|e| format!("{e:?}"))?;
                let mut tb = TraceBuilder::new();
                let mut sp = SummaryProbe::new();
                let res = sim
                    .run_probed(&built.sched, &mut Tee(&mut tb, &mut sp))
                    .map_err(|e| e.to_string())?;
                let latency_us = res.latency_us();
                let trace = tb.finish(&built.sched);
                let summary = sp.finish();
                // Phase-2 network transfers carry step tags >= 1000; phase-3
                // copies >= 2000.
                let net = trace.intervals_where(|s, m| {
                    let _ = s;
                    m.kind == "rails" && m.step.is_some_and(|st| st >= 1000)
                });
                let copies = trace.intervals_where(|s, m| {
                    let _ = s;
                    m.kind == "copy" && m.step.is_some_and(|st| st >= 2000)
                });
                let net_busy = mha_simnet::union_length(&net) * 1e6;
                let copy_busy = mha_simnet::union_length(&copies) * 1e6;
                let overlap = intersection_length(&net, &copies) * 1e6;
                let mut note = format!("[{name}] ");
                note.push_str(&render_run_summary(&summary));
                Ok(vec![Row {
                    label: name.to_string(),
                    values: vec![
                        latency_us,
                        net_busy,
                        copy_busy,
                        overlap,
                        100.0 * overlap / net_busy.max(1e-12),
                        100.0 * summary.overlap_fraction(),
                    ],
                    note: Some(note),
                }])
            })
        })
        .collect();
    let report = run_campaign(&points, &CampaignConfig::from_env()).unwrap();
    let mut t = Table::new(
        "Figure 6/7: phase-2/3 overlap, 8 nodes, 64 KB per rank \
         (PPN 4 = network-bound regime, PPN 32 = copy-bound regime)",
        "config",
        vec![
            "latency_us".into(),
            "net_busy_us".into(),
            "copy_busy_us".into(),
            "overlap_us".into(),
            "overlap_pct_of_net".into(),
            "whole_run_overlap_pct".into(),
        ],
    );
    let mut summaries = String::new();
    for pr in &report.results {
        for row in &pr.rows {
            t.push(row.label.clone(), row.values.clone());
            if let Some(n) = &row.note {
                summaries.push_str(n);
            }
        }
    }
    mha_bench::emit(&t, "fig07_overlap");
    mha_bench::emit_text(&summaries, "fig07_overlap_summary");
}
