//! Satellite property of the placement-aware cache key: two traffic jobs
//! with the **same `AlgoConfig` but different node subsets must never
//! alias a `ScheduleCache` entry**. A relocated schedule hard-codes its
//! placement into every rank and buffer owner, so a shared entry would
//! silently run one tenant's job on another tenant's nodes — the
//! `ConfigKey::placement` discriminant exists to make that impossible.

use std::sync::Arc;

use mha_bench::campaign::{ConfigKey, ScheduleCache};
use mha_bench::pt2pt_rails_schedule;
use mha_collectives::AlgoConfig;
use mha_sched::ProcGrid;
use mha_simnet::ClusterSpec;
use mha_traffic::placement_digest;
use proptest::prelude::*;

const CLUSTER_NODES: u32 = 16;

/// A random whole-node placement: a sorted distinct subset of the
/// 16-node cluster, width 2–8 (the traffic layer's realistic range).
fn arb_placement() -> impl Strategy<Value = Vec<u32>> {
    (2usize..=8).prop_flat_map(|w| {
        proptest::collection::btree_set(0u32..CLUSTER_NODES, w..=w)
            .prop_map(|s| s.into_iter().collect::<Vec<_>>())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Same config + message, different placements → different keys and
    /// different cache entries; identical placements → one shared entry.
    #[test]
    fn distinct_placements_never_alias_a_cache_entry(
        pa in arb_placement(),
        pb in arb_placement(),
        msg in 1usize..=(1 << 14),
    ) {
        let spec = ClusterSpec::thor();
        let cfg = AlgoConfig::default();
        let cluster = ProcGrid::new(CLUSTER_NODES, 4);
        let ga = ProcGrid::new(pa.len() as u32, 4);
        let gb = ProcGrid::new(pb.len() as u32, 4);
        let ka = ConfigKey::for_algo(&cfg.coerce_for(ga), ga, msg, &spec)
            .with_placement(placement_digest(cluster, &pa));
        let kb = ConfigKey::for_algo(&cfg.coerce_for(gb), gb, msg, &spec)
            .with_placement(placement_digest(cluster, &pb));
        // coerce_for only depends on the grid, so equal-width placements
        // share the config part; the placement digest must then be the
        // deciding discriminant.
        prop_assert_eq!(pa == pb, ka == kb, "key equality must mirror placement equality\n a={:?}\n b={:?}", pa, pb);

        let cache = ScheduleCache::new(true);
        let sa = cache.get_or_build(&ka, || Ok(pt2pt_rails_schedule(8))).unwrap();
        let sb = cache.get_or_build(&kb, || Ok(pt2pt_rails_schedule(16))).unwrap();
        if pa == pb {
            prop_assert!(Arc::ptr_eq(&sa, &sb), "equal placements must share the entry");
            prop_assert_eq!(cache.misses(), 1);
            prop_assert_eq!(cache.hits(), 1);
        } else {
            prop_assert!(!Arc::ptr_eq(&sa, &sb), "distinct placements must not alias");
            prop_assert_eq!(cache.misses(), 2);
            prop_assert_eq!(cache.len(), 2);
        }
    }

    /// The unplaced key (placement 0) never collides with any placed key,
    /// and `with_placement` round-trips into the digest.
    #[test]
    fn placed_and_unplaced_keys_are_disjoint(p in arb_placement(), msg in 1usize..=(1 << 14)) {
        let spec = ClusterSpec::thor();
        let cluster = ProcGrid::new(CLUSTER_NODES, 4);
        let grid = ProcGrid::new(p.len() as u32, 4);
        let cfg = AlgoConfig::default().coerce_for(grid);
        let plain = ConfigKey::for_algo(&cfg, grid, msg, &spec);
        let placed = plain.clone().with_placement(placement_digest(cluster, &p));
        prop_assert!(plain != placed, "placement must re-key");
        prop_assert!(plain.digest() != placed.digest(), "digest must cover placement");
    }
}
